//! Figure 7: the speedup in cumulative time cost achieved by PWU over PBUS
//! to reach the same (converged) error level, for all 14 benchmarks.
//!
//! The target error level is the maximum of the two strategies' final RMSE
//! (both provably reach it), and the reported ratio is
//! `CC_PBUS(level) / CC_PWU(level)` — values above 1 mean PWU is cheaper.
//!
//! Usage: `cargo run --release -p pwu-bench --bin fig7 [-- --quick|--full] [bench …]`

use pwu_bench::{all_benchmarks, output_dir, run_benchmark_curves, Scale};
use pwu_core::cost_to_reach;
use pwu_report::{write_csv, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let alpha = 0.01;
    let names: Vec<String> = {
        let named: Vec<String> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        if named.is_empty() {
            all_benchmarks()
                .iter()
                .map(|b| b.name().to_string())
                .collect()
        } else {
            named
        }
    };

    let mut table = Table::new([
        "benchmark",
        "target RMSE",
        "CC(PBUS) s",
        "CC(PWU) s",
        "speedup",
    ]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for name in &names {
        let result = run_benchmark_curves(name, scale, alpha, 0xF167);
        let pwu = result.curve("PWU").expect("PWU ran");
        let pbus = result.curve("PBUS").expect("PBUS ran");
        let level = pwu.rmse[0]
            .last()
            .expect("curves have at least one snapshot")
            .max(
                *pbus.rmse[0]
                    .last()
                    .expect("curves have at least one snapshot"),
            );
        let hist = |c: &pwu_core::StrategyCurve| -> Vec<(f64, f64)> {
            c.cumulative_cost
                .iter()
                .zip(&c.rmse[0])
                .map(|(&cc, &r)| (cc, r))
                .collect()
        };
        let cc_pwu = cost_to_reach(&hist(pwu), level).expect("PWU reaches its own level");
        let cc_pbus = cost_to_reach(&hist(pbus), level).expect("PBUS reaches the level");
        let speedup = cc_pbus / cc_pwu;
        speedups.push(speedup);
        table.row([
            name.clone(),
            format!("{level:.4e}"),
            format!("{cc_pbus:.3}"),
            format!("{cc_pwu:.3}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push(vec![
            name.clone(),
            format!("{level:.6e}"),
            format!("{cc_pbus:.6e}"),
            format!("{cc_pwu:.6e}"),
            format!("{speedup:.4}"),
        ]);
    }
    println!("Fig 7: cumulative-cost speedup of PWU over PBUS\n");
    println!("{}", table.render());
    let geo = pwu_stats::geomean(&speedups);
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("geometric-mean speedup: {geo:.2}x   max: {max:.2}x");
    println!("(paper: 3x on average, up to 21x)");
    write_csv(
        output_dir().join("fig7_speedups.csv"),
        &[
            "benchmark",
            "target_rmse",
            "cc_pbus_s",
            "cc_pwu_s",
            "speedup",
        ],
        rows,
    )
    .expect("CSV write failed");
}
