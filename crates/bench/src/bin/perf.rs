//! Before/after perf harness for the forest hot-path overhaul (PR 4) and
//! the measurement-engine overhaul (memoized kernel evaluation).
//!
//! Times the historical implementation against the optimized path **in the
//! same process on the same data**, so the recorded speedups are
//! reproducible on any machine rather than being a snapshot of one
//! historical host. The forest benchmarks pit [`pwu_forest::reference`]
//! against the flat-matrix path; the measurement benchmarks pit
//! [`pwu_spapt::Uncached`] (re-derive the base cost on every repetition,
//! the pre-cache implementation) against the memoizing kernel: one
//! 35-repeat annotation pass, the pool-lint pass every strategy pays when
//! an experiment builds its pools, and one end-to-end experiment cell.
//!
//! Run via `cargo xtask perf`, or directly:
//!
//! ```text
//! cargo run --release -p pwu-bench --bin perf -- \
//!     [--smoke] [--out PATH] [--measure-out PATH]
//! ```
//!
//! `--smoke` keeps the workload sizes but drops the sample count, for quick
//! regression checks (`cargo xtask perf --check`). The forest results go to
//! `--out` (default `BENCH_forest.json`) under the `pwu-bench-forest-v3`
//! schema (v2 added the `fast/`-prefixed [`FitMode::Fast`] engine entries,
//! recorded in the same run as the exact entries so the interleaved-timing
//! methodology stays comparable; v3 added the flat-layout fast *predict*
//! entries, whose baseline is the fast engine with the exact predict
//! kernel); the measurement results go to
//! `--measure-out` (default `BENCH_measure.json`) under
//! `pwu-bench-measure-v1`. Both reports are
//! `{"schema":...,"mode":...,"results":[{name, baseline_ns, optimized_ns,
//! speedup}, ...]}`; each number is the median of the timed samples, with
//! baseline and optimized calls interleaved so machine-speed drift cancels
//! out of the ratio.

use std::time::Instant;

use pwu_core::experiment::run_experiment;
use pwu_core::{Annotator, PoolScoreCache, Protocol, Strategy};
use pwu_forest::{reference, FitMode, ForestConfig, RandomForest};
use pwu_space::{FeatureKind, FeatureMatrix, PoolLintCounts, TuningTarget};
use pwu_spapt::{kernel_by_name, FaultModel, Uncached};
use pwu_stats::Xoshiro256PlusPlus;

/// Synthetic tuning-like data, in both layouts (bitwise-equal contents).
fn data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, FeatureMatrix, Vec<f64>) {
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d)
            .map(|f| (rng.next() as usize % (3 + f)) as f64)
            .collect();
        y.push(row.iter().sum::<f64>() + 0.05 * rng.next_f64());
        rows.push(row);
    }
    let matrix = FeatureMatrix::from_rows(d, &rows);
    (rows, matrix, y)
}

/// Median of a sample vector, in place.
fn median(v: &mut [f64]) -> f64 {
    v.sort_unstable_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Median wall-clock nanoseconds of two routines timed **interleaved**
/// (one warm-up call each, then baseline/optimized alternating every
/// sample). Interleaving matters on a throttled single-core container:
/// cgroup CPU-quota and frequency drift move both series together, so the
/// reported *ratio* stays stable even when absolute times wander between
/// the start and end of a run.
fn time_pair(
    samples: usize,
    mut baseline: impl FnMut(),
    mut optimized: impl FnMut(),
) -> (f64, f64) {
    baseline();
    optimized();
    let mut vb = Vec::with_capacity(samples);
    let mut vo = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        baseline();
        vb.push(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        optimized();
        vo.push(start.elapsed().as_nanos() as f64);
    }
    (median(&mut vb), median(&mut vo))
}

struct Row {
    name: &'static str,
    baseline_ns: f64,
    optimized_ns: f64,
}

fn bench_fit(name: &'static str, n: usize, d: usize, samples: usize) -> Row {
    let (rows, matrix, y) = data(n, d, 11);
    let kinds = vec![FeatureKind::Numeric; d];
    let config = ForestConfig::default();
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            std::hint::black_box(reference::fit(&config, &kinds, &rows, &y, 7));
        },
        || {
            std::hint::black_box(RandomForest::fit(&config, &kinds, &matrix, &y, 7));
        },
    );
    Row {
        name,
        baseline_ns,
        optimized_ns,
    }
}

/// The fast engine vs the same single-thread reference baseline as
/// [`bench_fit`], at the stated pool width. Width 1 is the honest
/// algorithmic speedup (counting-sort split search, no per-node sort); the
/// `_t4` entry additionally runs the per-tree fit on a 4-wide pool, which
/// only helps on hosts with free cores (this container is single-core, so
/// its committed number mostly measures pool overhead — see DESIGN.md §14).
fn bench_fit_fast(name: &'static str, n: usize, d: usize, width: usize, samples: usize) -> Row {
    let (rows, matrix, y) = data(n, d, 11);
    let kinds = vec![FeatureKind::Numeric; d];
    let exact = ForestConfig::default();
    let fast = ForestConfig {
        fit_mode: FitMode::Fast,
        ..ForestConfig::default()
    };
    let before = rayon::current_num_threads();
    rayon::set_threads(width);
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            std::hint::black_box(reference::fit(&exact, &kinds, &rows, &y, 7));
        },
        || {
            std::hint::black_box(RandomForest::fit(&fast, &kinds, &matrix, &y, 7));
        },
    );
    rayon::set_threads(before);
    Row {
        name,
        baseline_ns,
        optimized_ns,
    }
}

fn bench_predict_batch(samples: usize) -> Row {
    let d = 12;
    let (_, x, y) = data(300, d, 21);
    let kinds = vec![FeatureKind::Numeric; d];
    let forest = RandomForest::fit(&ForestConfig::default(), &kinds, &x, &y, 3);
    let (pool_rows, pool, _) = data(4000, d, 22);
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            std::hint::black_box(reference::predict_batch(&forest, &pool_rows));
        },
        || {
            std::hint::black_box(forest.predict_batch(&pool));
        },
    );
    Row {
        name: "predict_batch/pool4000_d12",
        baseline_ns,
        optimized_ns,
    }
}

/// The fast *predict* engine vs the same fast-fitted trees scored through
/// the exact pointer-descent kernel: both sides hold bitwise-identical
/// trees (the baseline is the optimized forest retagged
/// [`FitMode::Exact`], which drops only the flat predict layout), so the
/// ratio isolates the flat-node layout + blocked descent + lane fold from
/// any fit-side difference. This is "the current fast engine (exact
/// predict)" baseline: what PR 9 shipped.
fn bench_fast_predict_batch(samples: usize) -> Row {
    let d = 12;
    let (_, x, y) = data(500, d, 21);
    let kinds = vec![FeatureKind::Numeric; d];
    let fast_cfg = ForestConfig {
        fit_mode: FitMode::Fast,
        ..ForestConfig::default()
    };
    let fast = RandomForest::fit(&fast_cfg, &kinds, &x, &y, 3);
    let exact_kernel = fast.clone().with_fit_mode(FitMode::Exact);
    let (_, pool, _) = data(4000, d, 22);
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            std::hint::black_box(exact_kernel.predict_batch(&pool));
        },
        || {
            std::hint::black_box(fast.predict_batch(&pool));
        },
    );
    Row {
        name: "fast/predict_batch/pool4000_d12",
        baseline_ns,
        optimized_ns,
    }
}

/// One `RefitMode::Partial(8)` iteration at fast-engine settings, flat
/// predict on vs off: both sides fast-fit 8 replacement trees and rescore
/// the pool through the incremental [`PoolScoreCache`]; the baseline keeps
/// the pointer predict kernel (`with_flat_predict(false)` — the pre-flat
/// fast engine), the optimized side refreshes and folds through the flat
/// layout. The remaining gap is exactly what the flat predict path buys an
/// end-to-end tuning iteration.
///
/// The pool is 16k points — the large-candidate-pool regime that motivates
/// the flat path (μ/σ over the whole pool every refit, on spaces whose
/// exhaustive size runs to the tens of thousands). The 8-tree refit is
/// pool-size-independent and bit-identical on both sides, so it dilutes
/// the ratio at toy pool sizes; at realistic pool sizes the per-iteration
/// cost is scoring-dominated and the pointer kernel's point-outer fold
/// additionally falls out of cache, which is precisely the regime the
/// flat layout is for.
fn bench_fast_tuning_iteration(samples: usize) -> Row {
    let d = 12;
    let (_, train, y) = data(240, d, 31);
    let kinds = vec![FeatureKind::Numeric; d];
    let (_, pool, _) = data(16000, d, 32);
    let config = ForestConfig {
        fit_mode: FitMode::Fast,
        ..ForestConfig::default()
    };
    let forest = RandomForest::fit(&config, &kinds, &train, &y, 5);

    let mut base_forest = forest.clone().with_flat_predict(false);
    let mut base_cache = PoolScoreCache::build(&base_forest, &pool);
    let mut base_step = 0u64;
    let mut opt_forest = forest;
    let mut opt_cache = PoolScoreCache::build(&opt_forest, &pool);
    let mut opt_step = 0u64;
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            base_step += 1;
            let refitted = base_forest.update(&kinds, &train, &y, 8, base_step);
            base_cache.refresh(&base_forest, &pool, &refitted);
            std::hint::black_box(base_cache.predictions());
        },
        || {
            opt_step += 1;
            let refitted = opt_forest.update(&kinds, &train, &y, 8, opt_step);
            opt_cache.refresh(&opt_forest, &pool, &refitted);
            std::hint::black_box(opt_cache.predictions());
        },
    );
    Row {
        name: "fast/tuning_iteration/partial8_pool16k",
        baseline_ns,
        optimized_ns,
    }
}

/// One `RefitMode::Partial(8)` iteration's model work: regrow 8 of 64 trees
/// on the training set, then rescore the whole pool. The baseline rescans
/// every pool row with every tree, as Algorithm 1 did before the
/// [`PoolScoreCache`]; the optimized path refreshes only the refitted
/// trees' cached columns.
fn bench_tuning_iteration(samples: usize) -> Row {
    let d = 12;
    let (train_rows, train, y) = data(240, d, 31);
    let kinds = vec![FeatureKind::Numeric; d];
    let (pool_rows, pool, _) = data(4000, d, 32);
    let config = ForestConfig::default();
    let forest = RandomForest::fit(&config, &kinds, &train, &y, 5);
    let cache = PoolScoreCache::build(&forest, &pool);

    let mut base_step = 0u64;
    let mut base_forest = forest.clone();
    let mut opt_forest = forest.clone();
    let mut opt_cache = cache.clone();
    let mut opt_step = 0u64;
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            base_step += 1;
            reference::update(&mut base_forest, &kinds, &train_rows, &y, 8, base_step);
            std::hint::black_box(reference::predict_batch(&base_forest, &pool_rows));
        },
        || {
            opt_step += 1;
            let refitted = opt_forest.update(&kinds, &train, &y, 8, opt_step);
            opt_cache.refresh(&opt_forest, &pool, &refitted);
            std::hint::black_box(opt_cache.predictions());
        },
    );
    Row {
        name: "tuning_iteration/partial8",
        baseline_ns,
        optimized_ns,
    }
}

/// One full annotation pass — 8 configurations × 35 repeats on gesummv with
/// light fault injection, the paper's measurement protocol for one batch.
/// The baseline re-derives the base cost on all 35 repeats; the memoizing
/// kernel pays for one model evaluation per configuration plus 35 noise
/// draws. Both sides start from a cold cache every sample (fresh clone), so
/// the reported ratio is the *first-annotation* speedup, not a warm-cache
/// replay.
fn bench_annotate(samples: usize) -> Row {
    let kernel = kernel_by_name("gesummv")
        .expect("gesummv exists")
        .with_faults(FaultModel::light(0xBE_7C4));
    let direct = Uncached(kernel.clone());
    let mut rng = Xoshiro256PlusPlus::new(41);
    let cfgs = kernel.space().sample_distinct(8, &mut rng);
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            let target = direct.clone();
            let mut annotator = Annotator::new(&target, 35, 9);
            for cfg in &cfgs {
                std::hint::black_box(annotator.try_evaluate(cfg).ok());
            }
        },
        || {
            let target = kernel.clone();
            let mut annotator = Annotator::new(&target, 35, 9);
            for cfg in &cfgs {
                std::hint::black_box(annotator.try_evaluate(cfg).ok());
            }
        },
    );
    Row {
        name: "annotate/repeats35x8",
        baseline_ns,
        optimized_ns,
    }
}

/// The pool-classification pass an experiment repetition pays once per
/// strategy: lint 2000 pool configurations six times (the six strategies of
/// the paper's comparison all tally the shared pool). The memo computes
/// each configuration's decode exactly once across all six passes.
fn bench_pool_lint(samples: usize) -> Row {
    let kernel = kernel_by_name("atax").expect("atax exists");
    let direct = Uncached(kernel.clone());
    let mut rng = Xoshiro256PlusPlus::new(43);
    let cfgs = kernel.space().sample_distinct(2000, &mut rng);
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            let target = direct.clone();
            for _ in 0..6 {
                std::hint::black_box(PoolLintCounts::tally(&target, &cfgs));
            }
        },
        || {
            let target = kernel.clone();
            for _ in 0..6 {
                std::hint::black_box(PoolLintCounts::tally(&target, &cfgs));
            }
        },
    );
    Row {
        name: "pool_lint/2000x6",
        baseline_ns,
        optimized_ns,
    }
}

/// One cell of the experiment grid — `run_experiment` on one kernel with a
/// miniature protocol (two strategies, one repetition, 35-repeat
/// annotations). End-to-end: sampling, test labeling, pool linting, the
/// active-learning loops, forest fits and all; the memo removes the
/// repeated base-cost evaluations that dominate its measurement half.
fn bench_experiment_cell(samples: usize) -> Row {
    let kernel = kernel_by_name("mvt")
        .expect("mvt exists")
        .with_faults(FaultModel::light(0xCE_11));
    let direct = Uncached(kernel.clone());
    let strategies = [Strategy::Pwu { alpha: 0.05 }, Strategy::Uniform];
    let mut protocol = Protocol::quick(0.05);
    protocol.surrogate_size = 80;
    protocol.pool_size = 56;
    protocol.n_reps = 1;
    protocol.active.n_init = 6;
    protocol.active.n_batch = 2;
    protocol.active.n_max = 16;
    protocol.active.repeats = 35;
    protocol.active.forest = ForestConfig {
        n_trees: 16,
        ..ForestConfig::default()
    };
    let (baseline_ns, optimized_ns) = time_pair(
        samples,
        || {
            let target = direct.clone();
            std::hint::black_box(run_experiment(&target, &strategies, &protocol, 7));
        },
        || {
            let target = kernel.clone();
            std::hint::black_box(run_experiment(&target, &strategies, &protocol, 7));
        },
    );
    Row {
        name: "experiment_cell/mini",
        baseline_ns,
        optimized_ns,
    }
}

fn write_json(path: &str, schema: &str, mode: &str, results: &[Row]) -> std::io::Result<()> {
    let mut out = format!("{{\"schema\":\"{schema}\",\"mode\":\"{mode}\",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"baseline_ns\":{:.1},\"optimized_ns\":{:.1},\"speedup\":{:.3}}}",
            r.name,
            r.baseline_ns,
            r.optimized_ns,
            r.baseline_ns / r.optimized_ns
        ));
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

fn print_table(results: &[Row]) {
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "benchmark", "baseline", "optimized", "speedup"
    );
    for r in results {
        println!(
            "{:<28} {:>11.2} ms {:>11.2} ms {:>8.2}x",
            r.name,
            r.baseline_ns / 1e6,
            r.optimized_ns / 1e6,
            r.baseline_ns / r.optimized_ns
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_value = |flag: &str, default: &'static str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map_or(default, String::as_str)
            .to_string()
    };
    let out_path = arg_value("--out", "BENCH_forest.json");
    let measure_path = arg_value("--measure-out", "BENCH_measure.json");
    let (mode, samples) = if smoke { ("smoke", 5) } else { ("full", 15) };

    eprintln!("[perf] mode {mode}: {samples} samples per benchmark, median reported");
    let forest_results = [
        bench_fit("fit/n200_d8", 200, 8, samples),
        bench_fit("fit/n500_d20", 500, 20, samples),
        bench_fit_fast("fast/fit/n500_d20", 500, 20, 1, samples),
        bench_fit_fast("fast/fit/n500_d20_t4", 500, 20, 4, samples),
        bench_predict_batch(samples),
        bench_tuning_iteration(samples),
        bench_fast_predict_batch(samples),
        bench_fast_tuning_iteration(samples),
    ];
    print_table(&forest_results);
    write_json(&out_path, "pwu-bench-forest-v3", mode, &forest_results)
        .expect("write forest benchmark report");
    eprintln!("[perf] wrote {out_path}");

    // The measurement engine: smoke mode halves the already-bounded sample
    // count the same way, keeping `cargo xtask perf --check` inside a CI
    // budget (the experiment cell is the expensive one).
    let measure_results = [
        bench_annotate(samples),
        bench_pool_lint(samples),
        bench_experiment_cell(samples),
    ];
    print_table(&measure_results);
    write_json(&measure_path, "pwu-bench-measure-v1", mode, &measure_results)
        .expect("write measurement benchmark report");
    eprintln!("[perf] wrote {measure_path}");
}
