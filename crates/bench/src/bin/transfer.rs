//! Extension study (the paper's future work, Section VI): portability of
//! performance models across platforms.
//!
//! For each kernel, a forest is trained on Platform A measurements and
//! evaluated on Platform B's surface (and vice versa): if the surfaces are
//! rank-correlated, a model learned on one machine can warm-start tuning on
//! another instead of starting from scratch.
//!
//! Usage: `cargo run --release -p pwu-bench --bin transfer [-- --quick]`

use pwu_bench::{output_dir, Scale};
use pwu_forest::{ForestConfig, RandomForest};
use pwu_report::{write_csv, Table};
use pwu_space::{FeatureSchema, TuningTarget};
use pwu_spapt::MachineModel;
use pwu_stats::{rank::spearman, rmse, Xoshiro256PlusPlus};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (n_train, n_test) = match Scale::from_args(&args) {
        Scale::Quick => (150, 150),
        _ => (400, 400),
    };

    let mut table = Table::new([
        "kernel",
        "ρ (A vs B)",
        "ρ (A vs C)",
        "RMSE A→A",
        "RMSE A→B",
        "RMSE B→B",
        "RMSE A→C",
        "RMSE C→C",
    ]);
    let mut rows = Vec::new();
    for base in pwu_spapt::all_kernels() {
        let name = base.name().to_string();
        let on_a = base.clone().with_machine(MachineModel::platform_a());
        let on_b = base.clone().with_machine(MachineModel::platform_b());
        let on_c = base.with_machine(MachineModel::platform_c());
        let schema = FeatureSchema::for_space(on_a.space());
        let mut rng = Xoshiro256PlusPlus::new(0x7A57);
        let sample = on_a.space().sample_distinct(n_train + n_test, &mut rng);
        let (train_cfgs, test_cfgs) = sample.split_at(n_train);

        let x_train = schema.encode_matrix(on_a.space(), train_cfgs);
        let y_train_a: Vec<f64> = train_cfgs.iter().map(|c| on_a.ideal_time(c)).collect();
        let y_train_b: Vec<f64> = train_cfgs.iter().map(|c| on_b.ideal_time(c)).collect();
        let y_train_c: Vec<f64> = train_cfgs.iter().map(|c| on_c.ideal_time(c)).collect();
        let x_test = schema.encode_matrix(on_a.space(), test_cfgs);
        let y_test_a: Vec<f64> = test_cfgs.iter().map(|c| on_a.ideal_time(c)).collect();
        let y_test_b: Vec<f64> = test_cfgs.iter().map(|c| on_b.ideal_time(c)).collect();
        let y_test_c: Vec<f64> = test_cfgs.iter().map(|c| on_c.ideal_time(c)).collect();

        let model_a = RandomForest::fit(
            &ForestConfig::default(),
            schema.kinds(),
            &x_train,
            &y_train_a,
            1,
        );
        let model_b = RandomForest::fit(
            &ForestConfig::default(),
            schema.kinds(),
            &x_train,
            &y_train_b,
            1,
        );
        let model_c = RandomForest::fit(
            &ForestConfig::default(),
            schema.kinds(),
            &x_train,
            &y_train_c,
            1,
        );

        let pred_a = model_a.predict_batch_mean(&x_test);
        let pred_b = model_b.predict_batch_mean(&x_test);
        let pred_c = model_c.predict_batch_mean(&x_test);

        let rho_ab = spearman(&y_test_a, &y_test_b);
        let rho_ac = spearman(&y_test_a, &y_test_c);
        let a_to_a = rmse(&y_test_a, &pred_a);
        let a_to_b = rmse(&y_test_b, &pred_a);
        let b_to_b = rmse(&y_test_b, &pred_b);
        let a_to_c = rmse(&y_test_c, &pred_a);
        let c_to_c = rmse(&y_test_c, &pred_c);
        table.row([
            name.clone(),
            format!("{rho_ab:.3}"),
            format!("{rho_ac:.3}"),
            format!("{a_to_a:.3e}"),
            format!("{a_to_b:.3e}"),
            format!("{b_to_b:.3e}"),
            format!("{a_to_c:.3e}"),
            format!("{c_to_c:.3e}"),
        ]);
        rows.push(vec![
            name,
            format!("{rho_ab:.6}"),
            format!("{rho_ac:.6}"),
            format!("{a_to_a:.6e}"),
            format!("{a_to_b:.6e}"),
            format!("{b_to_b:.6e}"),
            format!("{a_to_c:.6e}"),
            format!("{c_to_c:.6e}"),
        ]);
    }
    println!("Model portability across platforms (future-work extension)\n");
    println!("{}", table.render());
    println!(
        "ρ(A,B) ≈ 1: the two Xeons differ near-affinely, so rankings\n\
         transfer for free. Platform C (wider vectors, bigger L2) moves the\n\
         optima: ρ(A,C) < 1 and RMSE A→C ≫ C→C quantify what a transferred\n\
         model loses vs retraining."
    );
    write_csv(
        output_dir().join("transfer_portability.csv"),
        &[
            "kernel",
            "spearman_a_b",
            "spearman_a_c",
            "rmse_a_to_a",
            "rmse_a_to_b",
            "rmse_b_to_b",
            "rmse_a_to_c",
            "rmse_c_to_c",
        ],
        rows,
    )
    .expect("CSV write failed");
}
