// Known-bad fixture for the `ambient` rule: reading undocumented
// environment variables. Exactly ONE line fires.

fn undocumented_knob() -> Option<String> {
    std::env::var("HOME").ok()
}

fn documented_knob() -> usize {
    // PWU_-prefixed variables are the documented configuration surface and
    // must not be flagged.
    std::env::var("PWU_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn cli_input() -> Vec<String> {
    // Explicit program input, exempt by design.
    std::env::args().collect()
}
