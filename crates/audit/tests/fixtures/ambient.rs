// Known-bad fixture for the `ambient` rule: reading ambient process state
// (clocks, undocumented environment variables). Exactly ONE line fires.

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn documented_knob() -> usize {
    // PWU_-prefixed variables are the documented configuration surface and
    // must not be flagged.
    std::env::var("PWU_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn cli_input() -> Vec<String> {
    // Explicit program input, exempt by design.
    std::env::args().collect()
}
