// Known-bad fixture for the `unsafe-no-safety` rule: an unsafe block with
// no adjacent SAFETY justification. Exactly ONE line fires.

fn naked(p: *const u8) -> u8 {
    unsafe { *p }
}

fn justified(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live, aligned byte for
    // the duration of this call.
    unsafe { *p }
}
