// Known-bad fixture for the `float-reduce` rule: a float reduction over an
// iteration order that is not index-stable (here: a parallel iterator).
// Exactly ONE line fires.

use rayon::prelude::*;

fn unstable_total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

fn ordered_total(xs: &[f64]) -> f64 {
    // Index-order reduction over a slice: stable, not flagged.
    xs.iter().map(|x| x * 2.0).sum()
}
