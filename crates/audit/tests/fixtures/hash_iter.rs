// Known-bad fixture for the `hash-iter` rule: iterating a hash container
// in result-affecting code. The scanner must flag exactly ONE line here.
// (Fixture files are scanned as text, never compiled.)

use std::collections::HashMap;

fn total_weight(weights: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total
}

fn keyed_lookups_are_fine(weights: &HashMap<String, f64>) -> f64 {
    // None of these observe iteration order and none may be flagged.
    let mut out = 0.0;
    if weights.contains_key("x") {
        out += weights.get("x").copied().unwrap_or_default();
    }
    out += weights.len() as f64;
    out
}
