// Known-bad fixture for the `rng-entropy` rule: RNG construction from
// ambient entropy instead of the seeded Xoshiro shim. Exactly ONE line
// fires.

fn draw() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

fn seeded_is_fine(seed: u64) -> u64 {
    // Seeded construction through the workspace generator: not flagged.
    let mut rng = pwu_stats::Xoshiro256PlusPlus::new(seed);
    rng.next_u64()
}
