// Known-bad fixture for the `float-cmp` rule: ordering floats through
// partial_cmp + unwrap instead of total_cmp. Exactly ONE line fires.

fn sort_times(times: &mut Vec<f64>) {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn sorted_right(times: &mut Vec<f64>) {
    // The deterministic comparator must not be flagged.
    times.sort_by(f64::total_cmp);
}
