// Known-bad fixture for the `wallclock` rule: wall/monotonic clock reads
// outside the pwu-obs wallclock sidecar. Exactly ONE line fires.

fn tick_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
