// Known-bad fixture for the `atomic-tally` rule: shared atomic
// accumulation whose observed value depends on thread interleaving.
// Exactly ONE line fires.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);

fn bump() {
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

fn read_only_is_fine() -> u64 {
    // Plain loads/stores of configuration values are not tallies.
    EVENTS.load(Ordering::Relaxed)
}
