//! Scanner integration tests: each known-bad fixture fires its rule exactly
//! once (and nothing else), the workspace self-audits clean modulo the
//! checked-in allowlist, and the `pwu-audit` CLI exits with the documented
//! status codes.

use std::path::{Path, PathBuf};
use std::process::Command;

use pwu_audit::allow;
use pwu_audit::scan::{scan_workspace, Rule};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn each_fixture_fires_its_rule_exactly_once() {
    let findings = scan_workspace(&fixtures_dir());
    let expected: [(Rule, &str, usize); 8] = [
        (Rule::HashIter, "hash_iter.rs", 9),
        (Rule::FloatCmp, "float_cmp.rs", 5),
        (Rule::RngEntropy, "rng_entropy.rs", 6),
        (Rule::Ambient, "ambient.rs", 5),
        (Rule::Wallclock, "wallclock.rs", 5),
        (Rule::FloatReduce, "float_reduce.rs", 8),
        (Rule::UnsafeNoSafety, "unsafe_no_safety.rs", 5),
        (Rule::AtomicTally, "atomic_tally.rs", 10),
    ];
    assert_eq!(
        findings.len(),
        expected.len(),
        "one finding per fixture and nothing more; got:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    for (rule, file, line) in expected {
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
        assert_eq!(
            hits.len(),
            1,
            "rule `{}` must fire exactly once across the fixtures; got {hits:?}",
            rule.name()
        );
        assert_eq!(hits[0].file, file, "rule `{}` fired in the wrong file", rule.name());
        assert_eq!(
            hits[0].line,
            line,
            "rule `{}` fired on the wrong line of {file}",
            rule.name()
        );
    }
}

#[test]
fn workspace_self_audit_is_clean_modulo_allowlist() {
    let root = workspace_root();
    let findings = scan_workspace(&root);
    // The workspace carries *intentional*, allowlisted hazards (timing
    // harness clocks, diagnostic tallies, the frozen forest reference).
    // Zero findings would mean the scanner stopped seeing, not that the
    // code got cleaner.
    assert!(
        !findings.is_empty(),
        "expected allowlisted findings; an empty scan means the scanner broke"
    );
    let allow_text = std::fs::read_to_string(root.join("audit.allow.toml"))
        .expect("audit.allow.toml at the workspace root");
    let entries = allow::parse(&allow_text).expect("checked-in allowlist parses");
    let audit = allow::apply(findings, &entries);
    assert!(
        audit.unallowed.is_empty(),
        "unallowed findings:\n{}",
        audit
            .unallowed
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        audit.stale.is_empty(),
        "stale allowlist entries: {:?}",
        audit.stale
    );
    assert!(audit.is_clean());
}

#[test]
fn cli_exits_nonzero_on_the_bad_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_pwu-audit"))
        .arg("--root")
        .arg(fixtures_dir())
        .output()
        .expect("spawn pwu-audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "fixtures must fail the gate; stdout:\n{stdout}"
    );
    for rule in Rule::all() {
        assert!(
            stdout.contains(rule.name()),
            "report must name rule `{}`; stdout:\n{stdout}",
            rule.name()
        );
    }
}

#[test]
fn cli_exits_zero_on_the_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_pwu-audit"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("spawn pwu-audit");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must pass the gate; stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_exits_two_on_a_malformed_allowlist() {
    let bad = std::env::temp_dir().join(format!(
        "pwu-audit-bad-allow-{}.toml",
        std::process::id()
    ));
    std::fs::write(&bad, "[[allow]]\nfile = \"x.rs\"\nrule = \"no-such-rule\"\nreason = \"r\"\n")
        .expect("write temp allowlist");
    let out = Command::new(env!("CARGO_BIN_EXE_pwu-audit"))
        .arg("--root")
        .arg(fixtures_dir())
        .arg("--allow")
        .arg(&bad)
        .output()
        .expect("spawn pwu-audit");
    let _ = std::fs::remove_file(&bad);
    assert_eq!(
        out.status.code(),
        Some(2),
        "parse errors are usage errors; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
