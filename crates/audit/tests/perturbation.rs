//! The schedule-perturbation gate: the workspace's parallel workhorses must
//! produce byte-identical results under every pool width (1/2/4/8) and every
//! perturbed deal order the sanitizer can impose — including the exact
//! checkpoint file bytes a session would resume from. A final footprint test
//! proves the perturbations were real (the deals actually differed) and that
//! the pool's reduction stayed index-unique, so the byte-identity tests are
//! not vacuously passing on an unperturbed schedule.

use std::path::PathBuf;
use std::sync::Mutex;

use pwu_audit::harness::{self, schedule_grid, run_under, Schedule};
use rayon::sanitize::{self, DealMode};

/// Pool width and deal mode are process-global; every test in this binary
/// serializes on this lock (`into_inner`: an earlier failed test must not
/// poison the rest of the gate).
static SCHEDULE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SCHEDULE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn reference<T>(f: impl FnOnce() -> T) -> T {
    run_under(
        Schedule {
            width: 1,
            deal: DealMode::RoundRobin,
        },
        f,
    )
}

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pwu-audit-perturb-{}-{tag}.ckpt",
        std::process::id()
    ))
}

#[test]
fn forest_fit_is_byte_identical_across_the_schedule_grid() {
    let _guard = lock();
    let want = reference(|| harness::forest_fit_bytes(42));
    assert!(!want.is_empty(), "the reference image must be non-empty");
    for schedule in schedule_grid() {
        let got = run_under(schedule, || harness::forest_fit_bytes(42));
        assert_eq!(got, want, "forest fit diverged under {schedule:?}");
    }
}

#[test]
fn checkpointed_cell_is_byte_identical_across_the_schedule_grid() {
    let _guard = lock();
    let ref_path = temp_ckpt("ref");
    let (want_ckpt, want_traj) = reference(|| harness::checkpointed_cell_bytes(7, &ref_path));
    assert!(!want_ckpt.is_empty(), "a checkpoint must have been written");
    assert!(!want_traj.is_empty(), "the trajectory image must be non-empty");
    for (i, schedule) in schedule_grid().into_iter().enumerate() {
        let path = temp_ckpt(&i.to_string());
        let (ckpt, traj) = run_under(schedule, || harness::checkpointed_cell_bytes(7, &path));
        assert_eq!(
            ckpt, want_ckpt,
            "checkpoint file bytes diverged under {schedule:?}"
        );
        assert_eq!(traj, want_traj, "trajectory diverged under {schedule:?}");
    }
}

#[test]
fn experiment_cell_is_byte_identical_across_the_schedule_grid() {
    let _guard = lock();
    let want = reference(|| harness::experiment_cell_bytes(2020));
    assert!(!want.is_empty(), "the reference image must be non-empty");
    for schedule in schedule_grid() {
        let got = run_under(schedule, || harness::experiment_cell_bytes(2020));
        assert_eq!(got, want, "experiment cell diverged under {schedule:?}");
    }
}

#[test]
fn perturbed_deals_differ_and_reductions_stay_index_unique() {
    let _guard = lock();
    let capture = |deal: DealMode| {
        run_under(Schedule { width: 4, deal }, || {
            sanitize::start_capture();
            let _ = harness::forest_fit_bytes(42);
            sanitize::take_captures()
        })
    };

    let baseline = capture(DealMode::RoundRobin);
    assert!(
        !baseline.is_empty(),
        "the forest fit must run batches on the pool"
    );
    // Footprint invariants on every batch: the deal partitions 0..n and the
    // fill order is a permutation of 0..n (each item produced exactly once).
    let check_footprints = |records: &[sanitize::BatchRecord], label: &str| {
        for rec in records {
            let mut dealt: Vec<usize> = rec.deal.iter().flatten().copied().collect();
            dealt.sort_unstable();
            assert_eq!(
                dealt,
                (0..rec.n_items).collect::<Vec<_>>(),
                "{label}: deal must partition 0..{}",
                rec.n_items
            );
            let mut filled = rec.fill_order.clone();
            filled.sort_unstable();
            assert_eq!(
                filled,
                (0..rec.n_items).collect::<Vec<_>>(),
                "{label}: each item must be produced exactly once"
            );
        }
    };
    check_footprints(&baseline, "round-robin");

    for deal in [DealMode::Blocked, DealMode::Reversed, DealMode::Shuffled(0xA0D17)] {
        let perturbed = capture(deal);
        check_footprints(&perturbed, &format!("{deal:?}"));
        assert_eq!(
            perturbed.len(),
            baseline.len(),
            "{deal:?}: the same deterministic batch sequence must run"
        );
        // The perturbation must be real: at least one multi-item batch must
        // have been dealt differently than under the production order.
        let differed = baseline
            .iter()
            .zip(&perturbed)
            .any(|(a, b)| a.n_items > 1 && a.width > 1 && a.deal != b.deal);
        assert!(
            differed,
            "{deal:?}: no batch was dealt differently — the perturbation was vacuous"
        );
    }
}

#[test]
fn nested_parallelism_degrades_are_observed_in_the_experiment_cell() {
    let _guard = lock();
    let before = sanitize::nested_degrades();
    run_under(
        Schedule {
            width: 4,
            deal: DealMode::RoundRobin,
        },
        || {
            let _ = harness::experiment_cell_bytes(2020);
        },
    );
    // The experiment protocol nests forest fits inside pool workers; the
    // sanitizer must have seen those inner batches degrade to sequential
    // rather than deadlock or re-enter the pool.
    assert!(
        sanitize::nested_degrades() > before,
        "expected nested parallel calls to degrade (and be counted) under width 4"
    );
}
