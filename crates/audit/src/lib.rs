//! `pwu-audit` — the determinism & concurrency auditor.
//!
//! Everything this reproduction claims rests on one contract: the same
//! seed produces the same bits, on any machine, at any thread count
//! (DESIGN.md §11). This crate is the tooling that *enforces* the contract
//! instead of trusting it, in two halves:
//!
//! 1. **Static** — [`scan`] walks the workspace's Rust sources and flags
//!    determinism hazards (hash-order iteration, `partial_cmp` unwraps,
//!    entropy-seeded RNGs, ambient clock/env reads, unordered float
//!    reductions, unjustified `unsafe`, schedule-dependent atomic tallies).
//!    Intentional sites are annotated in `audit.allow.toml` ([`allow`]);
//!    anything else fails the gate, as does a stale allowlist entry.
//! 2. **Runtime** — [`harness`] re-runs the workspace's parallel workhorses
//!    (forest fit, a checkpointed tuning session, a mini experiment cell)
//!    under perturbed schedules — pool widths 1/2/4/8 crossed with permuted
//!    deal orders via the `rayon` shim's `sanitize` hooks — and
//!    byte-compares checkpoints, flagging any order-sensitive reduction.
//!
//! Both halves run under `cargo xtask audit`; the scanner also self-audits
//! in this crate's test suite, so plain `cargo test` keeps the workspace
//! honest between CI runs. The auditor is the prerequisite oracle for any
//! future relaxation of the contract (ROADMAP item 5): once every
//! order-sensitive site is enumerated here, a fast-math path becomes a
//! reviewed allowlist diff rather than a leap of faith.

pub mod allow;
pub mod harness;
pub mod scan;

pub use allow::{apply, parse, AllowEntry, Audit};
pub use scan::{scan_file, scan_workspace, Finding, Rule};
