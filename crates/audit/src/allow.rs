//! The `audit.allow.toml` allowlist: intentional determinism hazards are
//! *annotated*, not silenced.
//!
//! Each entry names a file, a rule, an optional `contains` substring of the
//! flagged source line, and a mandatory human-readable `reason`. The gate
//! fails on any finding no entry covers **and** on any entry no finding
//! uses — a stale allowlist is itself a finding, so entries cannot outlive
//! the hazards they justify.
//!
//! The file is a small TOML subset parsed in-tree (the workspace is
//! offline, dependency-free by policy): `[[allow]]` tables with
//! `key = "basic string"` pairs and `#` comments. That subset is all the
//! format needs; anything else is a parse error.
//!
//! ```toml
//! [[allow]]
//! file = "crates/forest/src/reference.rs"
//! rule = "float-cmp"
//! reason = "frozen pre-overhaul reference; must reproduce the historical comparator"
//! ```

use crate::scan::{Finding, Rule};

/// One allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Root-relative `/`-separated path the entry covers.
    pub file: String,
    /// Rule name (see [`Rule::name`]).
    pub rule: String,
    /// Optional substring the flagged (trimmed) source line must contain.
    pub contains: Option<String>,
    /// Mandatory justification.
    pub reason: String,
}

/// The result of matching findings against the allowlist.
#[derive(Debug)]
pub struct Audit {
    /// Findings covered by an entry, with the entry index that covered them.
    pub allowed: Vec<(Finding, usize)>,
    /// Findings no entry covers — these fail the gate.
    pub unallowed: Vec<Finding>,
    /// Entries that covered nothing — stale, these also fail the gate.
    pub stale: Vec<AllowEntry>,
}

impl Audit {
    /// True when the gate passes: nothing unallowed, nothing stale.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unallowed.is_empty() && self.stale.is_empty()
    }
}

/// Parses the allowlist text. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    struct Raw {
        file: Option<String>,
        rule: Option<String>,
        contains: Option<String>,
        reason: Option<String>,
        line: usize,
    }
    let mut raws: Vec<Raw> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            raws.push(Raw {
                file: None,
                rule: None,
                contains: None,
                reason: None,
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `[[allow]]` or `key = \"value\"`"));
        };
        let Some(entry) = raws.last_mut() else {
            return Err(format!("line {lineno}: key outside any [[allow]] table"));
        };
        let value = parse_basic_string(value.trim())
            .ok_or_else(|| format!("line {lineno}: value must be a double-quoted string"))?;
        let slot = match key.trim() {
            "file" => &mut entry.file,
            "rule" => &mut entry.rule,
            "contains" => &mut entry.contains,
            "reason" => &mut entry.reason,
            other => return Err(format!("line {lineno}: unknown key {other:?}")),
        };
        if slot.is_some() {
            return Err(format!("line {lineno}: duplicate key {:?}", key.trim()));
        }
        *slot = Some(value);
    }
    let mut entries = Vec::with_capacity(raws.len());
    for raw in raws {
        let at = raw.line;
        let file = raw
            .file
            .ok_or_else(|| format!("entry at line {at}: missing `file`"))?;
        let rule = raw
            .rule
            .ok_or_else(|| format!("entry at line {at}: missing `rule`"))?;
        if Rule::by_name(&rule).is_none() {
            return Err(format!("entry at line {at}: unknown rule {rule:?}"));
        }
        let reason = raw
            .reason
            .ok_or_else(|| format!("entry at line {at}: missing `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!("entry at line {at}: empty `reason`"));
        }
        entries.push(AllowEntry {
            file,
            rule,
            contains: raw.contains,
            reason,
        });
    }
    Ok(entries)
}

/// Unquotes a TOML basic string, handling `\"` and `\\` escapes.
fn parse_basic_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            // An unescaped quote inside means the suffix strip was wrong.
            return None;
        }
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Splits findings into allowed / unallowed and reports stale entries.
#[must_use]
pub fn apply(findings: Vec<Finding>, entries: &[AllowEntry]) -> Audit {
    let mut used = vec![false; entries.len()];
    let mut allowed = Vec::new();
    let mut unallowed = Vec::new();
    for finding in findings {
        let covering = entries.iter().position(|e| {
            e.file == finding.file
                && e.rule == finding.rule.name()
                && e.contains
                    .as_ref()
                    .is_none_or(|c| finding.excerpt.contains(c.as_str()))
        });
        match covering {
            Some(i) => {
                used[i] = true;
                allowed.push((finding, i));
            }
            None => unallowed.push(finding),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Audit {
        allowed,
        unallowed,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Rule;

    fn finding(file: &str, rule: Rule, excerpt: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            rule,
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn parses_entries_and_rejects_malformed_input() {
        let good = r#"
# comment
[[allow]]
file = "a/b.rs"
rule = "ambient"
contains = "Instant::now"
reason = "timing harness"
"#;
        let entries = parse(good).expect("valid allowlist");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "a/b.rs");
        assert_eq!(entries[0].contains.as_deref(), Some("Instant::now"));

        assert!(parse("file = \"x\"").is_err(), "key outside table");
        assert!(parse("[[allow]]\nfile = \"x\"\nrule = \"nope\"\nreason = \"r\"").is_err());
        assert!(parse("[[allow]]\nfile = \"x\"\nrule = \"ambient\"").is_err(), "missing reason");
        assert!(parse("[[allow]]\nfile = \"x\"\nrule = \"ambient\"\nreason = \"\"").is_err());
    }

    #[test]
    fn apply_partitions_and_reports_stale_entries() {
        let entries = parse(
            r#"
[[allow]]
file = "a.rs"
rule = "ambient"
reason = "tooling"
[[allow]]
file = "never.rs"
rule = "hash-iter"
reason = "stale on purpose"
"#,
        )
        .expect("valid");
        let audit = apply(
            vec![
                finding("a.rs", Rule::Ambient, "let t = Instant::now();"),
                finding("b.rs", Rule::Ambient, "let t = Instant::now();"),
            ],
            &entries,
        );
        assert_eq!(audit.allowed.len(), 1);
        assert_eq!(audit.unallowed.len(), 1);
        assert_eq!(audit.unallowed[0].file, "b.rs");
        assert_eq!(audit.stale.len(), 1);
        assert_eq!(audit.stale[0].file, "never.rs");
        assert!(!audit.is_clean());
    }

    #[test]
    fn contains_narrows_the_match() {
        let entries = parse(
            r#"
[[allow]]
file = "a.rs"
rule = "ambient"
contains = "CARGO"
reason = "cargo resolution"
"#,
        )
        .expect("valid");
        let audit = apply(
            vec![
                finding("a.rs", Rule::Ambient, "env::var(\"CARGO\")"),
                finding("a.rs", Rule::Ambient, "env::var(\"HOME\")"),
            ],
            &entries,
        );
        assert_eq!(audit.allowed.len(), 1);
        assert_eq!(audit.unallowed.len(), 1);
        assert!(audit.stale.is_empty());
    }
}
