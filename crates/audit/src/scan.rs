//! The static determinism-lint pass: a dependency-free, line/token-level
//! scanner over the workspace's Rust sources.
//!
//! The scanner is deliberately *not* a parser. Like the `pwu-lint` kernel
//! gate from PR 1 it works on stripped source lines — comments, string
//! literals and char literals are blanked first, so rule patterns can only
//! match real code tokens — and it tracks just enough per-file context
//! (identifiers bound to hash containers, `#[cfg(test)]` item spans) to keep
//! the rules precise on this codebase. That makes every rule auditable by
//! eye and keeps the gate fast enough to run on every CI invocation.
//!
//! What it flags, and why each pattern threatens the determinism contract
//! (DESIGN.md §11):
//!
//! - **`hash-iter`** — iterating a `HashMap`/`HashSet`. Iteration order is
//!   seeded per-process; any result that observes it is unstable across
//!   runs. Keyed lookups (`get`/`insert`/`contains_key`/`entry`) are fine
//!   and never flagged.
//! - **`float-cmp`** — `partial_cmp(..).unwrap()`-style float comparisons.
//!   `total_cmp` is the canonical deterministic comparator: it is total
//!   (no NaN panic path) and orders every bit pattern the same way on every
//!   platform.
//! - **`rng-entropy`** — RNG construction from ambient entropy
//!   (`thread_rng`, `from_entropy`, `OsRng`, …) instead of the seeded
//!   Xoshiro generators in `pwu-stats`.
//! - **`ambient`** — reads of ambient process state: environment variables
//!   outside the documented `PWU_*` set. CLI arguments (`env::args`) are
//!   exempt — they are explicit program input, not ambient state.
//! - **`wallclock`** — wall/monotonic clock reads (`SystemTime::now`,
//!   `Instant::now`, `.elapsed(`, `UNIX_EPOCH`). The only sanctioned home
//!   for timing in result-adjacent code is the `pwu-obs` wall-clock
//!   sidecar, which is compiled out by default and write-only when armed
//!   (DESIGN.md §13); that sidecar and the benchmark harnesses are
//!   allowlisted with reasons, everything else fails the gate.
//! - **`float-reduce`** — float reductions (`sum`/`product`/`fold`/
//!   `reduce`) over an iteration order that is not index-stable: hash-map
//!   `values()`/`keys()` chains or parallel iterators. Float addition does
//!   not associate, so reduction order is observable through rounding.
//! - **`unsafe-no-safety`** — an `unsafe` token with no `// SAFETY:`
//!   comment within the three preceding lines. (The workspace forbids
//!   `unsafe` outright; the rule exists so the gate survives a future
//!   relaxation of that policy.)
//! - **`atomic-tally`** — shared atomic accumulation (`fetch_add`/
//!   `fetch_sub`). Tallies observed mid-flight depend on thread
//!   interleaving; they are legitimate only as pure diagnostics and must be
//!   allowlisted as such.
//!
//! Scope: `*.rs` files under the scan root, minus `target`, `.git`,
//! `tests`, `examples`, `benches` and `fixtures` directories and minus
//! `#[cfg(test)]` items — test scaffolding may freely read clocks and
//! temp dirs without affecting any result the contract covers.

use std::collections::BTreeSet;
use std::path::Path;

/// One determinism-lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-container iteration (order is per-process seeded).
    HashIter,
    /// Float ordering through `partial_cmp` + unwrap/expect.
    FloatCmp,
    /// RNG constructed from ambient entropy.
    RngEntropy,
    /// Ambient environment read outside the `PWU_*` contract.
    Ambient,
    /// Wall/monotonic clock read outside the `pwu-obs` wallclock sidecar.
    Wallclock,
    /// Float reduction over a non-index-stable iteration order.
    FloatReduce,
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    UnsafeNoSafety,
    /// Shared atomic tally (schedule-dependent when observed mid-flight).
    AtomicTally,
}

impl Rule {
    /// Every rule, in reporting order.
    #[must_use]
    pub fn all() -> [Rule; 8] {
        [
            Rule::HashIter,
            Rule::FloatCmp,
            Rule::RngEntropy,
            Rule::Ambient,
            Rule::Wallclock,
            Rule::FloatReduce,
            Rule::UnsafeNoSafety,
            Rule::AtomicTally,
        ]
    }

    /// The stable kebab-case name used in reports and `audit.allow.toml`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::FloatCmp => "float-cmp",
            Rule::RngEntropy => "rng-entropy",
            Rule::Ambient => "ambient",
            Rule::Wallclock => "wallclock",
            Rule::FloatReduce => "float-reduce",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::AtomicTally => "atomic-tally",
        }
    }

    /// Looks a rule up by its [`Rule::name`].
    #[must_use]
    pub fn by_name(name: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.name() == name)
    }

    /// One-line remediation hint shown next to findings.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            Rule::HashIter => "iterate a sorted view (BTreeMap/BTreeSet or a sorted Vec) in result-affecting code",
            Rule::FloatCmp => "use f64::total_cmp: total, panic-free, and identical on every platform",
            Rule::RngEntropy => "route randomness through the seeded pwu_stats::Xoshiro256PlusPlus",
            Rule::Ambient => "thread explicit inputs through instead of reading env (PWU_* vars are the documented exception)",
            Rule::Wallclock => "route timing through the pwu-obs wallclock sidecar (feature-gated, write-only) or allowlist the harness with a reason",
            Rule::FloatReduce => "reduce in index order (collect ordered, then sum) — float addition does not associate",
            Rule::UnsafeNoSafety => "precede the unsafe block with a // SAFETY: comment stating the invariant",
            Rule::AtomicTally => "keep atomic tallies diagnostic-only and allowlist them with a justification",
        }
    }
}

/// One flagged source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The trimmed original source line (allowlist `contains` matches this).
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 6] = ["target", ".git", "tests", "examples", "benches", "fixtures"];

/// Scans every `*.rs` file under `root` (see module docs for the scope
/// rules) and returns findings ordered by `(file, line, rule)`.
#[must_use]
pub fn scan_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    walk(root, root, &mut findings);
    findings
}

fn walk(root: &Path, dir: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(root, &path, findings);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            findings.extend(scan_file(&rel, &text));
        }
    }
}

/// Scans one file's text; `rel` is the root-relative path used in findings.
#[must_use]
pub fn scan_file(rel: &str, text: &str) -> Vec<Finding> {
    let original: Vec<&str> = text.lines().collect();
    let stripped = strip_source(text);
    let live = live_lines(&stripped);
    let tracked = hash_bindings(&stripped, &live);

    let mut findings = Vec::new();
    let mut push = |line: usize, rule: Rule| {
        findings.push(Finding {
            file: rel.to_string(),
            line: line + 1,
            rule,
            excerpt: original.get(line).map_or("", |l| l.trim()).to_string(),
        });
    };

    for (i, s) in stripped.iter().enumerate() {
        if !live[i] {
            continue;
        }
        if tracked.iter().any(|ident| hash_iteration_on(s, ident)) {
            push(i, Rule::HashIter);
        }
        if s.contains("partial_cmp") {
            let window: String = stripped[i..stripped.len().min(i + 3)].join(" ");
            if window.contains(".unwrap()") || window.contains(".expect(") {
                push(i, Rule::FloatCmp);
            }
        }
        const ENTROPY: [&str; 6] = [
            "thread_rng",
            "from_entropy",
            "OsRng",
            "getrandom",
            "rand::random",
            "RandomState",
        ];
        if ENTROPY.iter().any(|p| s.contains(p)) {
            push(i, Rule::RngEntropy);
        }
        const AMBIENT: [&str; 4] = ["env::var", "env::vars(", "env::var_os", "env::temp_dir"];
        // The PWU_ exemption matches the *original* line: the variable name
        // lives in a string literal, which stripping blanks.
        if AMBIENT.iter().any(|p| s.contains(p))
            && !original.get(i).is_some_and(|l| l.contains("PWU_"))
        {
            push(i, Rule::Ambient);
        }
        const WALLCLOCK: [&str; 4] = [
            "SystemTime::now",
            "Instant::now",
            ".elapsed(",
            "UNIX_EPOCH",
        ];
        if WALLCLOCK.iter().any(|p| s.contains(p)) {
            push(i, Rule::Wallclock);
        }
        const UNORDERED_SOURCES: [&str; 4] = ["par_iter", "into_par_iter", ".values()", ".keys()"];
        const REDUCERS: [&str; 5] = [".sum()", ".sum::<", ".product()", ".fold(", ".reduce("];
        if UNORDERED_SOURCES.iter().any(|p| s.contains(p))
            && REDUCERS.iter().any(|p| s.contains(p))
        {
            push(i, Rule::FloatReduce);
        }
        if contains_word(s, "unsafe") {
            let has_safety = original[i.saturating_sub(3)..=i]
                .iter()
                .any(|l| l.contains("SAFETY:"));
            if !has_safety {
                push(i, Rule::UnsafeNoSafety);
            }
        }
        if s.contains("fetch_add(") || s.contains("fetch_sub(") {
            push(i, Rule::AtomicTally);
        }
    }
    findings
}

/// Blanks comments, string literals and char literals, preserving line
/// structure, so rule patterns only ever match code tokens. Handles nested
/// block comments, escape sequences, raw strings (`r"…"`, `r#"…"#`) and
/// byte-string variants; lifetimes are kept (only `'x'`-shaped char
/// literals are blanked).
fn strip_source(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let mut prev_ident = false;
    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw / byte strings: r"…", r#"…"#, br"…", b"…" — only when the
        // prefix letter starts a token (not mid-identifier).
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' || chars[j] == 'b' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' && (chars[j] != 'b' || hashes == 0) {
                    // Scan to the closing quote + hashes.
                    let mut m = k + 1;
                    'raw: while m < n {
                        if chars[m] == '\n' {
                            out.push('\n');
                        }
                        if chars[m] == '"' {
                            let mut h = 0usize;
                            while m + 1 + h < n && h < hashes && chars[m + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                m += 1 + hashes;
                                break 'raw;
                            }
                        }
                        m += 1;
                    }
                    i = m;
                    prev_ident = false;
                    continue;
                }
            }
        }
        // Plain string literal.
        if c == '"' {
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        out.push('\n');
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            prev_ident = false;
            continue;
        }
        // Char literal ('x' or '\x…') vs lifetime ('a).
        if c == '\'' && !prev_ident {
            if i + 2 < n && chars[i + 1] == '\\' {
                let mut j = i + 2;
                while j < n && j < i + 8 && chars[j] != '\'' {
                    j += 1;
                }
                if j < n && chars[j] == '\'' {
                    i = j + 1;
                    prev_ident = false;
                    continue;
                }
            } else if i + 2 < n && chars[i + 2] == '\'' {
                i += 3;
                prev_ident = false;
                continue;
            }
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    out.split('\n').map(str::to_string).collect()
}

/// Marks which stripped lines are *live* (outside `#[cfg(test)]` items).
/// After a `#[cfg(test)]` attribute, the next brace-carrying item and its
/// whole body are dead.
fn live_lines(stripped: &[String]) -> Vec<bool> {
    let mut live = vec![true; stripped.len()];
    let mut pending = false;
    let mut depth = 0usize;
    let mut in_dead_item = false;
    for (i, s) in stripped.iter().enumerate() {
        if in_dead_item {
            live[i] = false;
            for c in s.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            in_dead_item = false;
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        if s.contains("#[cfg(test)]") {
            pending = true;
            live[i] = false;
            continue;
        }
        if pending {
            live[i] = false;
            if s.contains('{') {
                for c in s.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                pending = false;
                if depth > 0 {
                    in_dead_item = true;
                }
            } else if s.contains(';') {
                // `#[cfg(test)] mod tests;` — the body lives elsewhere.
                pending = false;
            }
        }
    }
    live
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: `let`
/// bindings whose line mentions a hash container, and `name: HashMap<…>`
/// patterns (struct fields, fn params). Over-approximation is fine — the
/// allowlist is the escape hatch, not rule precision.
fn hash_bindings(stripped: &[String], live: &[bool]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, s) in stripped.iter().enumerate() {
        if !live[i] {
            continue;
        }
        if !contains_word(s, "HashMap") && !contains_word(s, "HashSet") {
            continue;
        }
        // `let [mut] name …` with a hash container anywhere on the line.
        if let Some(p) = find_word(s, "let") {
            let rest = s[p + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                out.insert(ident);
            }
        }
        // `name: [&][std::collections::]HashMap<…>` (field / param decls).
        for container in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(p) = s[start..].find(container) {
                let at = start + p;
                let mut head = s[..at].trim_end();
                head = head.strip_suffix("std::collections::").unwrap_or(head);
                head = head.strip_suffix("collections::").unwrap_or(head);
                head = head.trim_end_matches(['&', ' ']);
                if let Some(h) = head.strip_suffix(':') {
                    let h = h.trim_end();
                    let ident: String = h
                        .chars()
                        .rev()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !ident.is_empty() && !ident.chars().next().unwrap().is_numeric() {
                        out.insert(ident);
                    }
                }
                start = at + container.len();
            }
        }
    }
    out
}

/// Methods that observe a container's iteration order.
const ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
];

/// True when `s` iterates `ident` (method call or `for … in ident`).
fn hash_iteration_on(s: &str, ident: &str) -> bool {
    let mut start = 0;
    while let Some(p) = s[start..].find(ident) {
        let at = start + p;
        let end = at + ident.len();
        let before_ok = at == 0 || !is_ident_char(s[..at].chars().last().unwrap());
        let after_ok = s[end..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            let rest = &s[end..];
            if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
                return true;
            }
            // `for x in ident {` / `for x in &ident {` (bare loop over the
            // container itself).
            let mut head = s[..at].trim_end();
            head = head.strip_suffix("&mut").unwrap_or(head).trim_end();
            head = head.strip_suffix('&').unwrap_or(head).trim_end();
            if (head.ends_with(" in") || head == "in")
                && (rest.trim_start().starts_with('{') || rest.trim().is_empty())
            {
                return true;
            }
        }
        start = end;
    }
    false
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Substring match with identifier-boundary checks on both sides.
fn contains_word(s: &str, w: &str) -> bool {
    find_word(s, w).is_some()
}

/// Byte offset of the first boundary-delimited occurrence of `w` in `s`.
fn find_word(s: &str, w: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(p) = s[start..].find(w) {
        let at = start + p;
        let before_ok = at == 0 || !is_ident_char(s[..at].chars().last().unwrap());
        let after_ok = s[at + w.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + w.len();
    }
    None
}
