//! The `pwu-audit` CLI: scans a source tree for determinism hazards and
//! gates on the allowlist.
//!
//! ```text
//! pwu-audit [--root <dir>] [--allow <file>]
//! ```
//!
//! `--root` defaults to the current directory (workspace root under
//! `cargo run`/`cargo xtask audit`); `--allow` defaults to
//! `<root>/audit.allow.toml` and an absent file means an empty allowlist.
//! Exit status: 0 when clean (every finding allowlisted, no stale
//! entries), 1 on any unallowed finding or stale entry, 2 on usage or
//! allowlist-parse errors.

use std::path::PathBuf;
use std::process::exit;

use pwu_audit::{allow, scan};

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow_path = args.next().map(PathBuf::from),
            other => {
                eprintln!("pwu-audit: unknown argument {other:?}\nusage: pwu-audit [--root <dir>] [--allow <file>]");
                exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        std::env::current_dir().unwrap_or_else(|e| {
            eprintln!("pwu-audit: cannot resolve current dir: {e}");
            exit(2);
        })
    });
    let allow_path = allow_path.unwrap_or_else(|| root.join("audit.allow.toml"));

    let entries = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path).unwrap_or_else(|e| {
            eprintln!("pwu-audit: cannot read {}: {e}", allow_path.display());
            exit(2);
        });
        allow::parse(&text).unwrap_or_else(|e| {
            eprintln!("pwu-audit: {}: {e}", allow_path.display());
            exit(2);
        })
    } else {
        Vec::new()
    };

    let findings = scan::scan_workspace(&root);
    let total = findings.len();
    let audit = allow::apply(findings, &entries);

    for f in &audit.unallowed {
        println!("{f}");
        println!("    hint: {}", f.rule.hint());
    }
    for e in &audit.stale {
        println!(
            "stale allowlist entry: file={:?} rule={:?}{} — covered no finding; remove it or fix the path",
            e.file,
            e.rule,
            e.contains
                .as_deref()
                .map(|c| format!(" contains={c:?}"))
                .unwrap_or_default(),
        );
    }
    println!(
        "pwu-audit: {} finding(s) — {} allowlisted, {} unallowed, {} stale allowlist entr{}",
        total,
        audit.allowed.len(),
        audit.unallowed.len(),
        audit.stale.len(),
        if audit.stale.len() == 1 { "y" } else { "ies" },
    );
    if audit.is_clean() {
        println!("pwu-audit: clean");
        exit(0);
    }
    exit(1);
}
