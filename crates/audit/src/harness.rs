//! The schedule-perturbation harness: the runtime half of the auditor.
//!
//! The static pass (see [`crate::scan`]) proves the *source* carries no
//! known determinism hazard; this module proves the *scheduler* cannot
//! create one. It re-runs the workspace's two parallel workhorses — a
//! forest fit and a miniature experiment cell — under perturbed thread
//! schedules (pool widths 1/2/4/8 × permuted deal orders, via the `rayon`
//! shim's `sanitize` hooks) and byte-compares the results. Any
//! order-sensitive reduction anywhere under those code paths shows up as a
//! byte diff; the sanitizer's footprint log additionally proves the
//! perturbations were real (the deal assignments differed) and that every
//! work item was produced exactly once.
//!
//! Each entry point is a pure function of its seed that serializes its
//! result to a canonical little-endian byte image — "the checkpoint" — so
//! callers compare runs with `assert_eq!(bytes_a, bytes_b)` and a failure
//! localizes to the first differing offset. The experiment-cell entry
//! additionally writes a *real* checkpoint file through
//! `pwu_core::CheckpointPolicy` and returns its raw bytes, tying the
//! harness to the exact durability format sessions resume from.

use std::path::Path;

use pwu_core::experiment::run_experiment;
use pwu_core::{active, ActiveConfig, CheckpointPolicy, Protocol, RefitMode, Strategy};
use pwu_forest::{ForestConfig, RandomForest};
use pwu_space::{FeatureSchema, Pool, TuningTarget};
use pwu_spapt::{kernel_by_name, FaultModel, Kernel};
use pwu_stats::Xoshiro256PlusPlus;

/// One thread schedule to perturb the pool into.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    /// Pool width (1 is the exact sequential path).
    pub width: usize,
    /// How items are dealt to workers.
    pub deal: rayon::sanitize::DealMode,
}

/// The width × deal-order grid the audit gate sweeps: widths 1/2/4/8, each
/// under the production deal order plus three perturbed ones.
#[must_use]
pub fn schedule_grid() -> Vec<Schedule> {
    use rayon::sanitize::DealMode;
    let mut out = Vec::new();
    for width in [1usize, 2, 4, 8] {
        for deal in [
            DealMode::RoundRobin,
            DealMode::Blocked,
            DealMode::Reversed,
            DealMode::Shuffled(0xA0D17),
        ] {
            out.push(Schedule { width, deal });
        }
    }
    out
}

/// Runs `f` under `schedule`, restoring the previous width and the
/// production deal order afterwards even if `f` panics.
pub fn run_under<T>(schedule: Schedule, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            rayon::set_threads(self.0);
            rayon::sanitize::set_deal_mode(rayon::sanitize::DealMode::RoundRobin);
        }
    }
    let restore = Restore(rayon::current_num_threads());
    rayon::set_threads(schedule.width);
    rayon::sanitize::set_deal_mode(schedule.deal);
    let out = f();
    drop(restore);
    out
}

/// Appends `v`'s IEEE bits to the byte image.
fn push_f64(bytes: &mut Vec<u8>, v: f64) {
    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed `usize` to the byte image.
fn push_usize(bytes: &mut Vec<u8>, v: usize) {
    bytes.extend_from_slice(&(v as u64).to_le_bytes());
}

/// The audit kernel: small space, light deterministic faults — enough
/// surface to exercise decode, legality, noise and retry paths without
/// dominating the gate's runtime.
fn audit_kernel(fault_seed: u64) -> Kernel {
    kernel_by_name("bicgkernel")
        .expect("bicgkernel is registered")
        .with_faults(FaultModel::light(fault_seed))
}

/// Fits a forest on deterministically sampled kernel data and serializes
/// every prediction the ensemble can make about a held-out probe set —
/// per-tree columns plus the (μ, σ) ensemble view — to a byte image.
///
/// The fit fans the trees out over the pool (`into_par_iter` in
/// `RandomForest::fit`), so this is the densest parallel reduction the
/// workspace has.
#[must_use]
pub fn forest_fit_bytes(seed: u64) -> Vec<u8> {
    let kernel = audit_kernel(0);
    let space = kernel.space();
    let schema = FeatureSchema::for_space(space);
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let all = space.sample_distinct(170, &mut rng);
    let (train_cfgs, probe_cfgs) = all.split_at(130);
    let x = schema.encode_matrix(space, train_cfgs);
    let y: Vec<f64> = train_cfgs.iter().map(|c| kernel.ideal_time(c)).collect();
    let probe = schema.encode_matrix(space, probe_cfgs);

    let config = ForestConfig {
        n_trees: 12,
        ..ForestConfig::default()
    };
    let forest = RandomForest::fit(&config, schema.kinds(), &x, &y, seed ^ 0x5EED);

    let mut bytes = Vec::new();
    for p in forest.predict_batch(&probe) {
        push_f64(&mut bytes, p.mean);
        push_f64(&mut bytes, p.std);
    }
    let all_trees: Vec<usize> = (0..config.n_trees).collect();
    for column in forest.predict_columns(&probe, &all_trees) {
        for v in column {
            push_f64(&mut bytes, v);
        }
    }
    bytes
}

/// Runs a miniature checkpointed active-learning session and returns
/// `(checkpoint file bytes, trajectory byte image)`.
///
/// `ckpt_path` is where the checkpoint file goes (callers own the temp
/// location); the file is removed before returning.
///
/// # Panics
/// Panics if the checkpointed run fails or the checkpoint is not written.
#[must_use]
pub fn checkpointed_cell_bytes(seed: u64, ckpt_path: &Path) -> (Vec<u8>, Vec<u8>) {
    let kernel = audit_kernel(0x7EAD);
    let space = kernel.space();
    let schema = FeatureSchema::for_space(space);
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let all = space.sample_distinct(150, &mut rng);
    let (pool_cfgs, test_cfgs) = all.split_at(120);
    let test_features = schema.encode_matrix(space, test_cfgs);
    let test_labels: Vec<f64> = test_cfgs.iter().map(|c| kernel.ideal_time(c)).collect();

    let config = ActiveConfig {
        n_init: 8,
        n_batch: 2,
        n_max: 26,
        forest: ForestConfig {
            n_trees: 12,
            ..ForestConfig::default()
        },
        refit: RefitMode::FromScratch,
        eval_every: 5,
        alphas: vec![0.05],
        repeats: 3,
        ..ActiveConfig::default()
    };
    let policy = CheckpointPolicy::new(ckpt_path, 2);
    let pool = Pool::new(space, &schema, pool_cfgs.to_vec());
    let run = active::run_with_checkpoints(
        &kernel,
        Strategy::Pwu { alpha: 0.05 },
        &config,
        pool,
        &test_features,
        &test_labels,
        seed ^ 0xCE11,
        &policy,
    )
    .expect("checkpointed audit run must succeed");

    let ckpt = std::fs::read(ckpt_path).expect("a checkpoint must have been written");
    let _ = std::fs::remove_file(ckpt_path);

    let mut bytes = Vec::new();
    push_usize(&mut bytes, run.train.labels().len());
    for y in run.train.labels() {
        push_f64(&mut bytes, *y);
    }
    for s in &run.selections {
        push_f64(&mut bytes, s.mean);
        push_f64(&mut bytes, s.std);
        push_f64(&mut bytes, s.observed);
    }
    for snap in &run.history {
        for r in &snap.rmse {
            push_f64(&mut bytes, *r);
        }
    }
    (ckpt, bytes)
}

/// Runs a two-repetition, two-strategy miniature of the paper's experiment
/// protocol — the outermost parallel level of the workspace, with forest
/// fits nested *inside* pool workers — and serializes every numeric curve
/// to a byte image.
#[must_use]
pub fn experiment_cell_bytes(seed: u64) -> Vec<u8> {
    let kernel = audit_kernel(0xFA117);
    let protocol = Protocol {
        surrogate_size: 130,
        pool_size: 100,
        active: ActiveConfig {
            n_init: 6,
            n_batch: 2,
            n_max: 16,
            forest: ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
            refit: RefitMode::FromScratch,
            eval_every: 4,
            alphas: vec![0.05],
            repeats: 3,
            ..ActiveConfig::default()
        },
        n_reps: 2,
    };
    let strategies = [Strategy::Pwu { alpha: 0.05 }, Strategy::MaxU];
    let result = run_experiment(&kernel, &strategies, &protocol, seed);

    let mut bytes = Vec::new();
    push_usize(&mut bytes, result.curves.len());
    push_usize(&mut bytes, result.dropped_test_configs);
    for curve in &result.curves {
        push_usize(&mut bytes, curve.n_train.len());
        for n in &curve.n_train {
            push_usize(&mut bytes, *n);
        }
        for per_alpha in &curve.rmse {
            for r in per_alpha {
                push_f64(&mut bytes, *r);
            }
        }
        for c in &curve.cumulative_cost {
            push_f64(&mut bytes, *c);
        }
        for s in &curve.selections {
            push_f64(&mut bytes, s.mean);
            push_f64(&mut bytes, s.std);
            push_f64(&mut bytes, s.observed);
        }
        for (mu, sigma) in &curve.test_scatter {
            push_f64(&mut bytes, *mu);
            push_f64(&mut bytes, *sigma);
        }
        push_usize(&mut bytes, curve.quarantined);
    }
    bytes
}
