//! Structural application of SPAPT/Orio-style transformations.
//!
//! The transformation parameters follow SPAPT conventions:
//!
//! - **tile** — two tiling levels per loop (outer for L2/L3, inner for L1).
//!   A tile value of 1 disables that level, matching Orio.
//! - **unroll-jam** — per-loop unroll factor (1 = none).
//! - **register tile** — a second, register-level unroll factor.
//! - **scalar replacement** — hoists innermost-invariant loads to scalars.
//! - **vector** — requests vectorization of the innermost loop.
//!
//! [`apply`] normalizes the raw parameters against the loop extents and
//! produces a [`TransformedNest`]: the concrete tiled loop order plus derived
//! quantities (unroll factors, register pressure, vectorizability) consumed
//! by the cache and cost models.

use pwu_space::ConfigLegality;

use crate::ir::LoopNest;

/// Raw transformation parameters for one loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTransform {
    /// Per-loop `(outer, inner)` tile sizes; 1 disables a level.
    pub tiles: Vec<(u64, u64)>,
    /// Per-loop unroll-jam factors (≥ 1).
    pub unroll: Vec<u64>,
    /// Per-loop register-tile factors (≥ 1).
    pub regtile: Vec<u64>,
    /// Scalar replacement on/off.
    pub scalar_replace: bool,
    /// Vectorization pragma on/off.
    pub vectorize: bool,
}

impl BlockTransform {
    /// The identity transformation for a nest of `depth` loops.
    #[must_use]
    pub fn identity(depth: usize) -> Self {
        Self {
            tiles: vec![(1, 1); depth],
            unroll: vec![1; depth],
            regtile: vec![1; depth],
            scalar_replace: false,
            vectorize: false,
        }
    }
}

/// Per-loop legality mask for one block, derived by a dependence analysis
/// (`pwu-analyze`) and consumed here when clamping transformations.
///
/// The masks encode what the analysis proved about the nest's dependences:
///
/// - `tile_ok[l]` — loop `l` may participate in tiling. [`apply`] hoists
///   every tiled loop's tile-origin loop to the outer band, so tiling loop
///   `l` is safe only when no dependence has a `>` (negative) direction in
///   `l` — the full-permutability condition.
/// - `unroll_ok[l]` / `regtile_ok[l]` — unroll-jamming loop `l` is safe:
///   no dependence carried by `l` has a `>` direction in a loop nested
///   inside `l`. The innermost loop is always safe to unroll.
/// - `scalar_replace_ok` — no innermost-invariant read would go stale.
/// - `vectorize_ok` — no non-reduction flow dependence is carried by the
///   innermost loop (a hard error if violated).
/// - `vectorize_clean` — additionally, no anti/output/reduction dependence
///   is carried by the innermost loop. A request that violates only this is
///   *flagged*, not illegal: a real compiler would still vectorize, via
///   reduction recognition or by sourcing values before the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLegality {
    /// Per-loop: may this loop be tiled?
    pub tile_ok: Vec<bool>,
    /// Per-loop: may this loop be unroll-jammed?
    pub unroll_ok: Vec<bool>,
    /// Per-loop: may this loop be register-tiled?
    pub regtile_ok: Vec<bool>,
    /// Is scalar replacement safe?
    pub scalar_replace_ok: bool,
    /// Is vectorization of the innermost loop free of hard violations?
    pub vectorize_ok: bool,
    /// Is vectorization free of *all* innermost-carried dependences?
    pub vectorize_clean: bool,
}

impl BlockLegality {
    /// The all-permissive mask for a nest of `depth` loops (no analysis
    /// information: everything allowed).
    #[must_use]
    pub fn permissive(depth: usize) -> Self {
        Self {
            tile_ok: vec![true; depth],
            unroll_ok: vec![true; depth],
            regtile_ok: vec![true; depth],
            scalar_replace_ok: true,
            vectorize_ok: true,
            vectorize_clean: true,
        }
    }

    /// Nest depth the mask was built for.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.tile_ok.len()
    }

    /// True when the mask restricts nothing.
    #[must_use]
    pub fn is_permissive(&self) -> bool {
        self.tile_ok.iter().all(|&b| b)
            && self.unroll_ok.iter().all(|&b| b)
            && self.regtile_ok.iter().all(|&b| b)
            && self.scalar_replace_ok
            && self.vectorize_ok
            && self.vectorize_clean
    }

    /// Classifies a raw transformation against the mask.
    ///
    /// # Panics
    /// Panics if `t` does not match the mask's depth.
    #[must_use]
    pub fn classify(&self, t: &BlockTransform) -> ConfigLegality {
        let depth = self.depth();
        assert_eq!(t.tiles.len(), depth, "transform depth mismatch");
        let tiled = |l: usize| t.tiles[l].0 > 1 || t.tiles[l].1 > 1;
        for l in 0..depth {
            if tiled(l) && !self.tile_ok[l] {
                return ConfigLegality::Illegal;
            }
            if t.unroll[l] > 1 && !self.unroll_ok[l] {
                return ConfigLegality::Illegal;
            }
            if t.regtile[l] > 1 && !self.regtile_ok[l] {
                return ConfigLegality::Illegal;
            }
        }
        if t.scalar_replace && !self.scalar_replace_ok {
            return ConfigLegality::Illegal;
        }
        if t.vectorize && !self.vectorize_ok {
            return ConfigLegality::Illegal;
        }
        if t.vectorize && !self.vectorize_clean {
            return ConfigLegality::Flagged;
        }
        ConfigLegality::Legal
    }

    /// Clamps `t` to its closest legal form; returns it and whether
    /// anything changed.
    ///
    /// Illegal tile requests fall back to untiled, illegal unroll/regtile
    /// factors to 1, and unsafe scalar-replacement/vectorization requests
    /// are dropped — mirroring a compiler that declines an unsafe pragma.
    ///
    /// # Panics
    /// Panics if `t` does not match the mask's depth.
    #[must_use]
    pub fn clamp(&self, t: &BlockTransform) -> (BlockTransform, bool) {
        let depth = self.depth();
        assert_eq!(t.tiles.len(), depth, "transform depth mismatch");
        let mut out = t.clone();
        for l in 0..depth {
            if !self.tile_ok[l] {
                out.tiles[l] = (1, 1);
            }
            if !self.unroll_ok[l] {
                out.unroll[l] = 1;
            }
            if !self.regtile_ok[l] {
                out.regtile[l] = 1;
            }
        }
        if !self.scalar_replace_ok {
            out.scalar_replace = false;
        }
        if !self.vectorize_ok {
            out.vectorize = false;
        }
        let changed = out != *t;
        (out, changed)
    }
}

/// Applies `t` to `nest` after clamping it against `legality`.
///
/// Returns the transformed nest and whether the clamp changed anything —
/// the caller can surface the second component as a "transformation
/// declined" flag.
///
/// # Panics
/// Panics if the parameter vectors or the mask do not match the nest depth.
#[must_use]
pub fn apply_with_legality(
    nest: &LoopNest,
    t: &BlockTransform,
    legality: &BlockLegality,
) -> (TransformedNest, bool) {
    let (clamped, changed) = legality.clamp(t);
    (apply(nest, &clamped), changed)
}

/// Which tiling band a transformed loop belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Iterates tile origins of the outer tiling level.
    TileOuter,
    /// Iterates inner-tile origins within an outer tile.
    TileMiddle,
    /// Iterates points within the innermost tile.
    Point,
}

/// One loop of the transformed nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TLoop {
    /// Index of the original loop this segment derives from.
    pub orig: usize,
    /// Trip count of this segment.
    pub trip: u64,
    /// Band of the segment.
    pub segment: Segment,
}

/// A loop nest after tiling/unrolling, with derived metrics.
#[derive(Debug, Clone)]
pub struct TransformedNest {
    /// Transformed loops, outermost first: outer-tile band, middle band,
    /// then point band (original loop order within each band).
    pub loops: Vec<TLoop>,
    /// Effective per-loop `(outer, inner)` tile sizes after clamping.
    pub eff_tiles: Vec<(u64, u64)>,
    /// Effective combined per-loop unroll factor (unroll-jam × regtile,
    /// clamped to the point trip).
    pub eff_unroll: Vec<u64>,
    /// Whether scalar replacement is active.
    pub scalar_replace: bool,
    /// Whether vectorization was requested.
    pub vectorize_requested: bool,
}

/// Applies `t` to `nest`.
///
/// # Panics
/// Panics if the parameter vectors do not match the nest depth or contain
/// zeros.
#[must_use]
pub fn apply(nest: &LoopNest, t: &BlockTransform) -> TransformedNest {
    let depth = nest.depth();
    assert_eq!(t.tiles.len(), depth, "tile parameters per loop");
    assert_eq!(t.unroll.len(), depth, "unroll parameters per loop");
    assert_eq!(t.regtile.len(), depth, "regtile parameters per loop");
    assert!(
        t.unroll.iter().chain(&t.regtile).all(|&u| u >= 1),
        "unroll factors must be at least 1"
    );
    assert!(
        t.tiles.iter().all(|&(a, b)| a >= 1 && b >= 1),
        "tile sizes must be at least 1"
    );

    // Normalize tiles: 1 disables a level; clamp to extents; inner ≤ outer.
    let mut eff_tiles = Vec::with_capacity(depth);
    for (l, &(t1, t2)) in nest.loops.iter().zip(&t.tiles) {
        let outer = if t1 <= 1 { l.extent } else { t1.min(l.extent) };
        let inner = if t2 <= 1 { outer } else { t2.min(outer) };
        eff_tiles.push((outer, inner));
    }

    // Build the loop bands.
    let mut loops = Vec::new();
    for (i, l) in nest.loops.iter().enumerate() {
        let (outer, _) = eff_tiles[i];
        if outer < l.extent {
            loops.push(TLoop {
                orig: i,
                trip: l.extent.div_ceil(outer),
                segment: Segment::TileOuter,
            });
        }
    }
    for (i, &(outer, inner)) in eff_tiles.iter().enumerate() {
        if inner < outer {
            loops.push(TLoop {
                orig: i,
                trip: outer.div_ceil(inner),
                segment: Segment::TileMiddle,
            });
        }
    }
    for (i, &(_, inner)) in eff_tiles.iter().enumerate() {
        loops.push(TLoop {
            orig: i,
            trip: inner,
            segment: Segment::Point,
        });
    }

    // Effective unroll factors: unroll-jam × register tile, clamped to the
    // point-band trip (cannot unroll beyond the tile).
    let eff_unroll: Vec<u64> = (0..depth)
        .map(|i| (t.unroll[i] * t.regtile[i]).min(eff_tiles[i].1).max(1))
        .collect();

    TransformedNest {
        loops,
        eff_tiles,
        eff_unroll,
        scalar_replace: t.scalar_replace,
        vectorize_requested: t.vectorize,
    }
}

impl TransformedNest {
    /// Number of innermost-point iterations (equals the original nest's).
    ///
    /// Tiling introduces ceiling effects on tile counts; this returns the
    /// *executed* iteration count including partial-tile rounding.
    #[must_use]
    pub fn iterations(&self) -> f64 {
        self.loops.iter().map(|l| l.trip as f64).product()
    }

    /// For the subnest strictly below `depth` (loops at positions ≥ depth),
    /// the iteration range covered by each original loop variable.
    ///
    /// Returns one entry per original loop: the product of the trips of that
    /// loop's segments inside the subnest (≥ 1).
    #[must_use]
    pub fn inner_ranges(&self, depth: usize, n_orig: usize) -> Vec<u64> {
        let mut ranges = vec![1u64; n_orig];
        for l in &self.loops[depth..] {
            ranges[l.orig] = ranges[l.orig].saturating_mul(l.trip);
        }
        ranges
    }

    /// Number of times the subnest below `depth` executes.
    #[must_use]
    pub fn executions(&self, depth: usize) -> f64 {
        self.loops[..depth].iter().map(|l| l.trip as f64).product()
    }

    /// The original index of the innermost point loop.
    ///
    /// # Panics
    /// Panics if the nest has no loops (impossible for validated nests).
    #[must_use]
    pub fn innermost_orig(&self) -> usize {
        self.loops.last().expect("nest has loops").orig
    }

    /// Iterations of the innermost point loop between branches
    /// (its trip divided by its unroll factor drives loop overhead).
    #[must_use]
    pub fn innermost_unroll(&self) -> u64 {
        self.eff_unroll[self.innermost_orig()]
    }

    /// Estimated live floating-point values in the fully unrolled body.
    ///
    /// Every array reference contributes one live value per distinct unrolled
    /// instance: the product of the unroll factors of the loops the reference
    /// actually depends on. Scalar replacement adds one live scalar per
    /// innermost-invariant read it hoists.
    #[must_use]
    pub fn register_pressure(&self, nest: &LoopNest) -> f64 {
        let inner = self.innermost_orig();
        let mut live = 0.0f64;
        for stmt in &nest.stmts {
            for r in stmt.reads.iter().chain(&stmt.writes) {
                let mut instances = 1.0f64;
                for (l, &u) in self.eff_unroll.iter().enumerate() {
                    if u > 1 && !r.invariant_in(l) {
                        instances *= u as f64;
                    }
                }
                if self.scalar_replace && r.invariant_in(inner) {
                    // Hoisted: one scalar regardless of innermost unroll, but
                    // it stays live across the whole loop body.
                    live += instances.max(1.0);
                } else {
                    // Streamed through registers; a fraction stays live.
                    live += 0.5 * instances;
                }
            }
        }
        live
    }

    /// Whether the innermost loop is profitably vectorizable: every access
    /// must be unit-stride or invariant in it.
    #[must_use]
    pub fn vectorizable(&self, nest: &LoopNest) -> bool {
        let inner = self.innermost_orig();
        nest.stmts.iter().all(|stmt| {
            stmt.reads
                .iter()
                .chain(&stmt.writes)
                .all(|r| r.invariant_in(inner) || r.unit_stride_in(inner))
        })
    }

    /// Fraction of reads per iteration eliminated by scalar replacement
    /// (reads invariant in the innermost loop, kept in scalars).
    #[must_use]
    pub fn scalar_replaced_read_fraction(&self, nest: &LoopNest) -> f64 {
        if !self.scalar_replace {
            return 0.0;
        }
        let inner = self.innermost_orig();
        let total: usize = nest.stmts.iter().map(|s| s.reads.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let invariant: usize = nest
            .stmts
            .iter()
            .flat_map(|s| &s.reads)
            .filter(|r| r.invariant_in(inner))
            .count();
        invariant as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};

    fn mm_nest(n: u64) -> LoopNest {
        let nl = 3;
        LoopNest {
            loops: vec![
                LoopDim {
                    name: "i".into(),
                    extent: n,
                },
                LoopDim {
                    name: "j".into(),
                    extent: n,
                },
                LoopDim {
                    name: "k".into(),
                    extent: n,
                },
            ],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 2)]),
                    ArrayRef::new(1, vec![LinIndex::var(nl, 2), LinIndex::var(nl, 1)]),
                    ArrayRef::new(2, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)]),
                ],
                writes: vec![ArrayRef::new(
                    2,
                    vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)],
                )],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![n, n]),
                ArrayDecl::doubles("B", vec![n, n]),
                ArrayDecl::doubles("C", vec![n, n]),
            ],
        }
    }

    #[test]
    fn identity_transform_preserves_structure() {
        let nest = mm_nest(64);
        let t = apply(&nest, &BlockTransform::identity(3));
        assert_eq!(t.loops.len(), 3);
        assert!(t.loops.iter().all(|l| l.segment == Segment::Point));
        assert_eq!(t.iterations(), 64.0 * 64.0 * 64.0);
        assert_eq!(t.innermost_orig(), 2);
        assert_eq!(t.innermost_unroll(), 1);
    }

    #[test]
    fn two_level_tiling_produces_three_bands() {
        let nest = mm_nest(64);
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(32, 8), (32, 8), (1, 1)];
        let t = apply(&nest, &p);
        // i and j: outer + middle + point; k: point only → 2+2+3 loops.
        assert_eq!(t.loops.len(), 7);
        let outers: Vec<_> = t
            .loops
            .iter()
            .filter(|l| l.segment == Segment::TileOuter)
            .collect();
        assert_eq!(outers.len(), 2);
        assert!(outers.iter().all(|l| l.trip == 2)); // 64/32
                                                     // Point band trips: 8, 8, 64.
        let points: Vec<u64> = t
            .loops
            .iter()
            .filter(|l| l.segment == Segment::Point)
            .map(|l| l.trip)
            .collect();
        assert_eq!(points, vec![8, 8, 64]);
        // Iteration count preserved (tiles divide extents exactly here).
        assert_eq!(t.iterations(), 64.0 * 64.0 * 64.0);
    }

    #[test]
    fn oversized_and_unit_tiles_are_normalized() {
        let nest = mm_nest(10);
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(512, 16), (1, 7), (16, 1)];
        let t = apply(&nest, &p);
        // Loop 0: outer clamps to 10 (no TileOuter loop), inner 10.
        assert_eq!(t.eff_tiles[0], (10, 10));
        // Loop 1: outer disabled → 10, inner 7.
        assert_eq!(t.eff_tiles[1], (10, 7));
        // Loop 2: outer 16 clamps to 10, inner disabled → = outer.
        assert_eq!(t.eff_tiles[2], (10, 10));
        // Partial tiles round up: loop 1 middle trip = ceil(10/7) = 2.
        let mid: Vec<_> = t
            .loops
            .iter()
            .filter(|l| l.segment == Segment::TileMiddle)
            .collect();
        assert_eq!(mid.len(), 1);
        assert_eq!(mid[0].trip, 2);
    }

    #[test]
    fn inner_ranges_reflect_subnest() {
        let nest = mm_nest(64);
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(16, 1), (16, 1), (1, 1)];
        let t = apply(&nest, &p);
        // Bands: [outer_i(4), outer_j(4), point_i(16), point_j(16), point_k(64)]
        assert_eq!(t.loops.len(), 5);
        // Below depth 2 (inside both tile loops): i ranges 16, j 16, k 64.
        assert_eq!(t.inner_ranges(2, 3), vec![16, 16, 64]);
        // Below depth 0: full extents.
        assert_eq!(t.inner_ranges(0, 3), vec![64, 64, 64]);
        // Executions of the innermost subnest.
        assert_eq!(t.executions(2), 16.0);
    }

    #[test]
    fn unroll_clamps_to_tile() {
        let nest = mm_nest(64);
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(1, 1), (1, 1), (1, 4)];
        p.unroll = vec![1, 1, 31];
        p.regtile = vec![1, 1, 8];
        let t = apply(&nest, &p);
        // 31 × 8 = 248 clamped to the point trip 4.
        assert_eq!(t.eff_unroll[2], 4);
    }

    #[test]
    fn mm_vectorizable_iff_innermost_is_j() {
        let nest = mm_nest(64);
        // Default order i,j,k: innermost k → B[k][j] strided → not vectorizable.
        let t = apply(&nest, &BlockTransform::identity(3));
        assert!(!t.vectorizable(&nest));
    }

    #[test]
    fn register_pressure_grows_with_unroll() {
        let nest = mm_nest(64);
        let base = apply(&nest, &BlockTransform::identity(3));
        let mut p = BlockTransform::identity(3);
        p.unroll = vec![4, 4, 1];
        let unrolled = apply(&nest, &p);
        assert!(unrolled.register_pressure(&nest) > base.register_pressure(&nest));
    }

    #[test]
    fn permissive_legality_never_clamps() {
        let nest = mm_nest(64);
        let leg = BlockLegality::permissive(3);
        assert!(leg.is_permissive());
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(64, 16), (32, 8), (1, 1)];
        p.unroll = vec![2, 4, 8];
        p.vectorize = true;
        assert_eq!(leg.classify(&p), pwu_space::ConfigLegality::Legal);
        let (clamped, changed) = leg.clamp(&p);
        assert!(!changed);
        assert_eq!(clamped, p);
        let (t, changed) = apply_with_legality(&nest, &p, &leg);
        assert!(!changed);
        assert_eq!(t.eff_tiles, apply(&nest, &p).eff_tiles);
    }

    #[test]
    fn restrictive_legality_classifies_and_clamps() {
        let mut leg = BlockLegality::permissive(3);
        leg.tile_ok[1] = false;
        leg.unroll_ok[0] = false;
        leg.vectorize_clean = false;

        let id = BlockTransform::identity(3);
        assert_eq!(leg.classify(&id), pwu_space::ConfigLegality::Legal);

        let mut tiled = id.clone();
        tiled.tiles[1] = (32, 8);
        assert_eq!(leg.classify(&tiled), pwu_space::ConfigLegality::Illegal);

        let mut vec_req = id.clone();
        vec_req.vectorize = true;
        assert_eq!(leg.classify(&vec_req), pwu_space::ConfigLegality::Flagged);

        let mut both = tiled.clone();
        both.unroll[0] = 4;
        both.vectorize = true;
        let (clamped, changed) = leg.clamp(&both);
        assert!(changed);
        assert_eq!(clamped.tiles[1], (1, 1));
        assert_eq!(clamped.unroll[0], 1);
        // vectorize_clean is a soft finding: the request survives the clamp.
        assert!(clamped.vectorize);
        assert_eq!(leg.classify(&clamped), pwu_space::ConfigLegality::Flagged);
    }

    #[test]
    fn scalar_replacement_fraction() {
        let nest = mm_nest(64);
        let mut p = BlockTransform::identity(3);
        p.scalar_replace = true;
        let t = apply(&nest, &p);
        // Innermost is k; C[i][j] is invariant in k → 1 of 3 reads replaced.
        assert!((t.scalar_replaced_read_fraction(&nest) - 1.0 / 3.0).abs() < 1e-12);
        let off = apply(&nest, &BlockTransform::identity(3));
        assert_eq!(off.scalar_replaced_read_fraction(&nest), 0.0);
    }
}
