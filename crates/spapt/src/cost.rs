//! The cycle/time model.
//!
//! Combines the instruction side (flops, division latency, L1 access ports,
//! loop overhead, register spills, vectorization) with the memory side (the
//! per-level miss traffic of [`crate::cache`]) into a wall-clock estimate.
//! Latency-bound misses pay inter-level latency; streaming misses are
//! prefetched and pay the bandwidth cost instead.

use crate::cache::{analyze, TrafficReport};
use crate::ir::LoopNest;
use crate::machine::MachineModel;
use crate::transform::{apply, BlockTransform, TransformedNest};

/// Cycle breakdown of one transformed nest (useful for tests and examples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Floating-point arithmetic cycles.
    pub flop_cycles: f64,
    /// L1 access (load/store port) cycles.
    pub access_cycles: f64,
    /// Loop control overhead cycles.
    pub overhead_cycles: f64,
    /// Register-spill penalty cycles.
    pub spill_cycles: f64,
    /// Memory-stall cycles from cache misses.
    pub memory_cycles: f64,
}

impl CostBreakdown {
    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.flop_cycles
            + self.access_cycles
            + self.overhead_cycles
            + self.spill_cycles
            + self.memory_cycles
    }
}

/// Estimates the execution time in seconds of `transform` applied to `nest`.
#[must_use]
pub fn estimate_time(nest: &LoopNest, transform: &BlockTransform, machine: &MachineModel) -> f64 {
    let t = apply(nest, transform);
    let traffic = analyze(nest, &t, machine);
    machine.cycles_to_seconds(breakdown(nest, &t, &traffic, machine).total())
}

/// Full cycle breakdown for an already-applied transformation.
#[must_use]
pub fn breakdown(
    nest: &LoopNest,
    t: &TransformedNest,
    traffic: &TrafficReport,
    machine: &MachineModel,
) -> CostBreakdown {
    let iters = t.iterations();

    // --- Floating-point work ---------------------------------------------
    let adds_muls: f64 = nest.stmts.iter().map(|s| f64::from(s.adds + s.muls)).sum();
    let divs: f64 = nest.stmts.iter().map(|s| f64::from(s.divs)).sum();
    let mut flop_per_iter = adds_muls / machine.flops_per_cycle;
    // Divisions are unpipelined; partial overlap between consecutive ones.
    flop_per_iter += divs * machine.div_latency * 0.75;

    let vectorized = t.vectorize_requested && t.vectorizable(nest);
    if vectorized {
        flop_per_iter /= machine.vector_width * machine.vector_efficiency;
    } else if t.vectorize_requested {
        // Forced vectorization of a non-unit-stride loop: the compiler emits
        // gathers/scatters or gives up after adding checks.
        flop_per_iter *= 1.05;
    }
    let flop_cycles = flop_per_iter * iters;

    // --- L1 accesses -------------------------------------------------------
    // Two load/store ports, so ~0.5 cycles per access; vector loads move
    // `width` elements per access.
    let mut access_cycles = traffic.l1_accesses * 0.5;
    if vectorized {
        access_cycles /= machine.vector_width;
    }

    // --- Loop overhead -----------------------------------------------------
    // Every loop of the transformed nest pays `loop_overhead` per iteration
    // of its body-entry; the innermost loop is amortized by unrolling.
    let mut overhead_cycles = 0.0;
    for (p, l) in t.loops.iter().enumerate() {
        let body_entries = t.executions(p) * l.trip as f64;
        if p == t.loops.len() - 1 {
            overhead_cycles += body_entries * machine.loop_overhead / t.innermost_unroll() as f64;
        } else {
            overhead_cycles += body_entries * machine.loop_overhead;
        }
    }

    // --- Register spills and code bloat -------------------------------------
    // The unrolled body covers `u_total` original iterations; each live value
    // beyond the register file is spilled (store + reload) once per body
    // execution plus extra traffic on reuse, amortized here by the dominant
    // unroll factor. Giant bodies additionally overflow the instruction
    // cache (SPAPT's pathological unroll×regtile corners, which real runs
    // report as timeouts).
    let pressure = t.register_pressure(nest);
    let u_max = t.eff_unroll.iter().copied().max().unwrap_or(1) as f64;
    let u_total: f64 = t.eff_unroll.iter().map(|&u| u as f64).product();
    let mut spill_cycles = if pressure > f64::from(machine.fp_registers) {
        (pressure - f64::from(machine.fp_registers)) * machine.spill_penalty / u_max * iters
    } else {
        0.0
    };
    let instrs_per_iter: f64 = nest
        .stmts
        .iter()
        .map(|s| f64::from(s.adds + s.muls + s.divs) + (s.reads.len() + s.writes.len()) as f64)
        .sum::<f64>()
        + 2.0;
    if u_total * instrs_per_iter > 8192.0 {
        // Body no longer fits the instruction cache; steady fetch stalls.
        spill_cycles += 1.5 * iters;
    }

    // --- Memory stalls -------------------------------------------------------
    // Misses at level c are served by level c+1: latency-bound traffic pays
    // the service latency difference, streaming traffic is prefetched and
    // pays bandwidth (one line per `line/bw` cycles), floor-bounded by a
    // small residual latency.
    let mut memory_cycles = 0.0;
    let n_levels = machine.caches.len();
    for (c, misses) in traffic.level_misses.iter().enumerate() {
        let this_lat = machine.caches[c].latency;
        let (next_lat, _line) = if c + 1 < n_levels {
            (machine.caches[c + 1].latency, machine.caches[c + 1].line)
        } else {
            (machine.memory_latency, machine.caches[c].line)
        };
        let service = next_lat - this_lat;
        memory_cycles += misses.latency_bound * service;
        let line_bytes = machine.caches[c].line as f64;
        let bw_cost = line_bytes / machine.memory_bandwidth;
        memory_cycles += misses.streaming * bw_cost.max(service * 0.15);
    }

    CostBreakdown {
        flop_cycles,
        access_cycles,
        overhead_cycles,
        spill_cycles,
        memory_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};

    fn mm_nest(n: u64) -> LoopNest {
        let nl = 3;
        LoopNest {
            loops: vec![
                LoopDim {
                    name: "i".into(),
                    extent: n,
                },
                LoopDim {
                    name: "j".into(),
                    extent: n,
                },
                LoopDim {
                    name: "k".into(),
                    extent: n,
                },
            ],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 2)]),
                    ArrayRef::new(1, vec![LinIndex::var(nl, 2), LinIndex::var(nl, 1)]),
                    ArrayRef::new(2, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)]),
                ],
                writes: vec![ArrayRef::new(
                    2,
                    vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)],
                )],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![n, n]),
                ArrayDecl::doubles("B", vec![n, n]),
                ArrayDecl::doubles("C", vec![n, n]),
            ],
        }
    }

    /// 1-D vectorizable stream: y[i] = a[i] * b[i].
    fn stream_nest(n: u64) -> LoopNest {
        LoopNest {
            loops: vec![LoopDim {
                name: "i".into(),
                extent: n,
            }],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(1, 0)]),
                    ArrayRef::new(1, vec![LinIndex::var(1, 0)]),
                ],
                writes: vec![ArrayRef::new(2, vec![LinIndex::var(1, 0)])],
                adds: 0,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("a", vec![n]),
                ArrayDecl::doubles("b", vec![n]),
                ArrayDecl::doubles("y", vec![n]),
            ],
        }
    }

    #[test]
    fn times_are_positive_and_finite() {
        let nest = mm_nest(256);
        let m = MachineModel::platform_a();
        for tiles in [vec![(1u64, 1u64); 3], vec![(64, 8); 3], vec![(1, 512); 3]] {
            let mut p = BlockTransform::identity(3);
            p.tiles = tiles;
            let s = estimate_time(&nest, &p, &m);
            assert!(s.is_finite() && s > 0.0, "time {s}");
        }
    }

    #[test]
    fn good_tiling_beats_untiled_mm() {
        let nest = mm_nest(512);
        let m = MachineModel::platform_a();
        let untiled = estimate_time(&nest, &BlockTransform::identity(3), &m);
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(128, 32), (128, 32), (128, 32)];
        let tiled = estimate_time(&nest, &p, &m);
        assert!(
            tiled < untiled,
            "tiled {tiled} should beat untiled {untiled}"
        );
    }

    #[test]
    fn vectorization_speeds_up_streams() {
        let nest = stream_nest(1 << 16);
        let m = MachineModel::platform_a();
        let scalar = estimate_time(&nest, &BlockTransform::identity(1), &m);
        let mut p = BlockTransform::identity(1);
        p.vectorize = true;
        let vector = estimate_time(&nest, &p, &m);
        assert!(
            vector < scalar,
            "vectorized {vector} should beat scalar {scalar}"
        );
    }

    #[test]
    fn forced_vectorization_of_strided_loop_does_not_help() {
        let nest = mm_nest(128); // innermost k: B is strided
        let m = MachineModel::platform_a();
        let scalar = estimate_time(&nest, &BlockTransform::identity(3), &m);
        let mut p = BlockTransform::identity(3);
        p.vectorize = true;
        let vector = estimate_time(&nest, &p, &m);
        assert!(vector >= scalar, "vector {vector} vs scalar {scalar}");
    }

    #[test]
    fn moderate_unrolling_helps_oversized_unrolling_hurts() {
        let nest = mm_nest(256);
        let m = MachineModel::platform_a();
        let base = estimate_time(&nest, &BlockTransform::identity(3), &m);
        let mut modest = BlockTransform::identity(3);
        modest.unroll = vec![1, 1, 4];
        let modest_t = estimate_time(&nest, &modest, &m);
        assert!(modest_t < base, "u4 {modest_t} vs base {base}");

        let mut heavy = BlockTransform::identity(3);
        heavy.unroll = vec![16, 16, 16];
        let heavy_t = estimate_time(&nest, &heavy, &m);
        assert!(
            heavy_t > modest_t,
            "heavy unroll {heavy_t} should spill vs {modest_t}"
        );
    }

    #[test]
    fn unroll_reduces_overhead_component() {
        let nest = mm_nest(64);
        let m = MachineModel::platform_a();
        let t0 = apply(&nest, &BlockTransform::identity(3));
        let r0 = analyze(&nest, &t0, &m);
        let b0 = breakdown(&nest, &t0, &r0, &m);
        let mut p = BlockTransform::identity(3);
        p.unroll = vec![1, 1, 8];
        let t1 = apply(&nest, &p);
        let r1 = analyze(&nest, &t1, &m);
        let b1 = breakdown(&nest, &t1, &r1, &m);
        assert!(b1.overhead_cycles < b0.overhead_cycles);
    }

    #[test]
    fn division_heavy_statement_costs_more() {
        // Small enough to stay cache-resident so compute cost dominates.
        let mut nest = stream_nest(1 << 10);
        let m = MachineModel::platform_a();
        let base = estimate_time(&nest, &BlockTransform::identity(1), &m);
        nest.stmts[0].divs = 2;
        let with_div = estimate_time(&nest, &BlockTransform::identity(1), &m);
        assert!(with_div > base * 1.5, "{with_div} vs {base}");
    }
}
