//! Tensor: a mode-3 tensor–matrix contraction,
//! `C[i][j][k] += A[i][j][l] * B[l][k]`.
//!
//! The only four-deep nest in the suite: a dense matrix multiply applied
//! across the slices of a third-order tensor. All four loops are tiling,
//! unroll-jam and register-tile candidates, giving the largest per-block
//! parameter count (18). Part of the extended SPAPT suite.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 120;

fn contraction_nest() -> LoopNest {
    let nl = 4; // i, j, k, l
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
            LoopDim {
                name: "k".into(),
                extent: N,
            },
            LoopDim {
                name: "l".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1), v(3)]),
                ArrayRef::new(1, vec![v(3), v(2)]),
                ArrayRef::new(2, vec![v(0), v(1), v(2)]),
            ],
            writes: vec![ArrayRef::new(2, vec![v(0), v(1), v(2)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("C", vec![N, N, N]),
        ],
    }
}

/// Builds the `tensor` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "tensor",
        vec![BlockSpec {
            label: "tc",
            nest: contraction_nest(),
            tiled: vec![0, 1, 2, 3],
            unrolled: vec![0, 1, 2, 3],
            regtiled: vec![0, 1, 2, 3],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn tensor_dimensions() {
        // 8 tile + 4 unroll + 4 regtile + 1 scalarreplace + 1 vector.
        assert_eq!(build().space().dim(), 18);
    }
}
