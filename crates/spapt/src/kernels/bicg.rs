//! `BiCG` kernel: `q = A·p` and `s = Aᵀ·r`, the two matvecs of the
//! biconjugate-gradient step (SPAPT's `bicgkernel`).

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

// Distinct problem size from atax: the BiCG step works on a rectangular
// operator in SPAPT's setting, and a different extent keeps the two
// benchmark surfaces distinguishable.
const N: u64 = 3200;

fn nest(transpose: bool) -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    // q = A p:  q[i] += A[i][j] p[j]
    // s = Aᵀ r: s[j] += A[i][j] r[i]
    let (vec_in, vec_out) = if transpose {
        (v(0), v(1))
    } else {
        (v(1), v(0))
    };
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]),
                ArrayRef::new(1, vec![vec_in]),
                ArrayRef::new(2, vec![vec_out.clone()]),
            ],
            writes: vec![ArrayRef::new(2, vec![vec_out])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("in", vec![N]),
            ArrayDecl::doubles("out", vec![N]),
        ],
    }
}

/// Builds the `bicgkernel` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "bicgkernel",
        vec![
            BlockSpec {
                label: "q",
                nest: nest(false),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "s",
                nest: nest(true),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn bicg_space_is_spapt_scale() {
        let k = build();
        assert_eq!(k.space().dim(), 20);
        assert!(k.space().cardinality() > 10u128.pow(10));
    }
}
