//! The 12 simulated SPAPT kernels.
//!
//! Each kernel is a list of [`BlockSpec`]s — loop nests that Orio would tune
//! independently after loop distribution (e.g. ADI's two statements). The
//! kernel's parameter space is generated mechanically from the blocks,
//! following SPAPT's conventions:
//!
//! - every tiled loop contributes **two** tile parameters (outer and inner
//!   level) with values `{1, 16, 32, 64, 128, 256, 512}` (1 = disabled);
//! - every unrollable loop contributes an unroll-jam factor `1..=31`;
//! - every register-tiled loop contributes a factor `{1, 8, 32}`;
//! - every block contributes a `scalarreplace` and a `vector` boolean.
//!
//! This reproduces Table I exactly for ADI (8 tile + 4 unroll-jam +
//! 4 regtile + 2 scalarreplace + 2 vector = 20 parameters) and puts every
//! kernel inside the paper's 8–38-parameter, 10¹⁰–10³⁰-point regime.

mod adi;
mod atax;
mod bicg;
mod correlation;
mod dgemv3;
mod fdtd;
mod gemver;
mod gesummv;
mod hessian;
mod jacobi;
mod lu;
mod mm;
mod mvt;
mod seidel;
mod trmm;

use pwu_space::{Configuration, Param, ParamSpace, TuningTarget};
use pwu_stats::Xoshiro256PlusPlus;

use crate::cost::estimate_time;
use crate::ir::LoopNest;
use crate::machine::MachineModel;
use crate::noise::NoiseModel;
use crate::transform::BlockTransform;

/// SPAPT tile-size levels (1 disables tiling at that level).
pub const TILE_VALUES: [f64; 7] = [1.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
/// SPAPT register-tile factors.
pub const REGTILE_VALUES: [f64; 3] = [1.0, 8.0, 32.0];
/// SPAPT unroll-jam factors 1..=31.
#[must_use]
pub fn unroll_values() -> Vec<f64> {
    (1..=31).map(f64::from).collect()
}

/// One independently tuned loop nest of a kernel.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Short block label used in parameter names.
    pub label: &'static str,
    /// The loop nest.
    pub nest: LoopNest,
    /// Loops (by index) that receive two-level tiling parameters.
    pub tiled: Vec<usize>,
    /// Loops that receive unroll-jam parameters.
    pub unrolled: Vec<usize>,
    /// Loops that receive register-tile parameters.
    pub regtiled: Vec<usize>,
}

/// How one space parameter maps onto a block transformation.
#[derive(Debug, Clone, Copy)]
enum ParamRole {
    TileOuter { block: usize, loop_idx: usize },
    TileInner { block: usize, loop_idx: usize },
    Unroll { block: usize, loop_idx: usize },
    RegTile { block: usize, loop_idx: usize },
    ScalarReplace { block: usize },
    Vector { block: usize },
}

/// A simulated SPAPT kernel: blocks + parameter space + machine + noise.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    blocks: Vec<BlockSpec>,
    space: ParamSpace,
    roles: Vec<ParamRole>,
    machine: MachineModel,
    noise: NoiseModel,
    repeats: usize,
}

impl Kernel {
    /// Assembles a kernel from its blocks on Platform A with the paper's
    /// measurement protocol (35 repeats, quiet-node noise).
    #[must_use]
    pub fn new(name: impl Into<String>, blocks: Vec<BlockSpec>) -> Self {
        let name = name.into();
        for b in &blocks {
            b.nest.validate();
        }
        let mut params = Vec::new();
        let mut roles = Vec::new();
        // Tile parameters: outer then inner per (block, loop), block-major.
        for (bi, b) in blocks.iter().enumerate() {
            for &l in &b.tiled {
                let lname = &b.nest.loops[l].name;
                params.push(Param::ordinal(
                    format!("T1_{}_{}", b.label, lname),
                    TILE_VALUES.to_vec(),
                ));
                roles.push(ParamRole::TileOuter {
                    block: bi,
                    loop_idx: l,
                });
                params.push(Param::ordinal(
                    format!("T2_{}_{}", b.label, lname),
                    TILE_VALUES.to_vec(),
                ));
                roles.push(ParamRole::TileInner {
                    block: bi,
                    loop_idx: l,
                });
            }
        }
        for (bi, b) in blocks.iter().enumerate() {
            for &l in &b.unrolled {
                params.push(Param::ordinal(
                    format!("U_{}_{}", b.label, b.nest.loops[l].name),
                    unroll_values(),
                ));
                roles.push(ParamRole::Unroll {
                    block: bi,
                    loop_idx: l,
                });
            }
        }
        for (bi, b) in blocks.iter().enumerate() {
            for &l in &b.regtiled {
                params.push(Param::ordinal(
                    format!("RT_{}_{}", b.label, b.nest.loops[l].name),
                    REGTILE_VALUES.to_vec(),
                ));
                roles.push(ParamRole::RegTile {
                    block: bi,
                    loop_idx: l,
                });
            }
        }
        for (bi, b) in blocks.iter().enumerate() {
            params.push(Param::boolean(format!("SCR_{}", b.label)));
            roles.push(ParamRole::ScalarReplace { block: bi });
        }
        for (bi, b) in blocks.iter().enumerate() {
            params.push(Param::boolean(format!("VEC_{}", b.label)));
            roles.push(ParamRole::Vector { block: bi });
        }
        let space = ParamSpace::new(name.clone(), params);
        Self {
            name,
            blocks,
            space,
            roles,
            machine: MachineModel::platform_a(),
            noise: NoiseModel::quiet(),
            repeats: 35,
        }
    }

    /// Replaces the noise model (tests use [`NoiseModel::none`]).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Moves the kernel to a different machine model.
    ///
    /// Supports the paper's future-work direction — studying the
    /// *portability* of performance models across platforms: the same
    /// parameter space evaluated on another machine yields a shifted but
    /// correlated surface (see the `transfer` harness binary).
    #[must_use]
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Replaces the measurement repeat count.
    #[must_use]
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        assert!(repeats > 0);
        self.repeats = repeats;
        self
    }

    /// Measurement repeats used by the protocol (35, per the paper).
    #[must_use]
    pub fn repeats(&self) -> usize {
        self.repeats
    }

    /// The kernel's blocks.
    #[must_use]
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// The machine the kernel "runs" on.
    #[must_use]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Decodes a configuration into one transformation per block.
    #[must_use]
    pub fn decode(&self, cfg: &Configuration) -> Vec<BlockTransform> {
        self.space.validate(cfg);
        let mut transforms: Vec<BlockTransform> = self
            .blocks
            .iter()
            .map(|b| BlockTransform::identity(b.nest.depth()))
            .collect();
        for (role, (_, value)) in self.roles.iter().zip(self.space.values(cfg)) {
            match (*role, value) {
                (ParamRole::TileOuter { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].tiles[loop_idx].0 = v as u64;
                }
                (ParamRole::TileInner { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].tiles[loop_idx].1 = v as u64;
                }
                (ParamRole::Unroll { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].unroll[loop_idx] = v as u64;
                }
                (ParamRole::RegTile { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].regtile[loop_idx] = v as u64;
                }
                (ParamRole::ScalarReplace { block }, pwu_space::Value::Flag(f)) => {
                    transforms[block].scalar_replace = f;
                }
                (ParamRole::Vector { block }, pwu_space::Value::Flag(f)) => {
                    transforms[block].vectorize = f;
                }
                (role, value) => unreachable!("role {role:?} got value {value:?}"),
            }
        }
        transforms
    }
}

impl TuningTarget for Kernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn ideal_time(&self, cfg: &Configuration) -> f64 {
        self.decode(cfg)
            .iter()
            .zip(&self.blocks)
            .map(|(t, b)| estimate_time(&b.nest, t, &self.machine))
            .sum()
    }

    fn measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.noise.perturb(self.ideal_time(cfg), rng)
    }

    fn measure_averaged(
        &self,
        cfg: &Configuration,
        repeats: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> f64 {
        assert!(repeats > 0, "need at least one repeat");
        let ideal = self.ideal_time(cfg);
        (0..repeats)
            .map(|_| self.noise.perturb(ideal, rng))
            .sum::<f64>()
            / repeats as f64
    }
}

/// Builds all 12 kernels in the paper's order.
#[must_use]
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        adi::build(),
        atax::build(),
        bicg::build(),
        correlation::build(),
        dgemv3::build(),
        fdtd::build(),
        gemver::build(),
        gesummv::build(),
        hessian::build(),
        jacobi::build(),
        lu::build(),
        mm::build(),
    ]
}

/// The extended suite: three additional SPAPT problems (`mvt`, `seidel`,
/// `trmm`) beyond the 12 the paper selected — SPAPT defines 18, and the
/// paper skipped six whose transformation/compilation was too slow to
/// evaluate; these three exercise access patterns the core 12 lack
/// (coupled transpose matvecs, in-place 9-point relaxation, triangular
/// matrix products).
#[must_use]
pub fn extended_kernels() -> Vec<Kernel> {
    vec![mvt::build(), seidel::build(), trmm::build()]
}

/// Looks a kernel up by name, searching the paper's 12 and the extended
/// suite.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels()
        .into_iter()
        .chain(extended_kernels())
        .find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_kernels_with_spapt_scale_spaces() {
        let kernels = all_kernels();
        assert_eq!(kernels.len(), 12);
        for k in &kernels {
            let d = k.space().dim();
            assert!(
                (8..=38).contains(&d),
                "{}: {d} parameters outside SPAPT's 8–38",
                k.name()
            );
            assert!(
                k.space().cardinality() >= 10u128.pow(9),
                "{}: space too small ({})",
                k.name(),
                k.space().cardinality()
            );
        }
    }

    #[test]
    fn adi_matches_table_one_parameter_counts() {
        let adi = kernel_by_name("adi").expect("adi exists");
        let names: Vec<&str> = adi.space().params().iter().map(|p| p.name()).collect();
        let count = |prefix: &str| names.iter().filter(|n| n.starts_with(prefix)).count();
        assert_eq!(count("T1_") + count("T2_"), 8, "tile params");
        assert_eq!(count("U_"), 4, "unroll-jam params");
        assert_eq!(count("RT_"), 4, "regtile params");
        assert_eq!(count("SCR_"), 2, "scalarreplace params");
        assert_eq!(count("VEC_"), 2, "vector params");
        assert_eq!(adi.space().dim(), 20);
    }

    #[test]
    fn ideal_times_positive_finite_and_varied() {
        let mut rng = Xoshiro256PlusPlus::new(42);
        for k in all_kernels() {
            let cfgs = k.space().sample_distinct(32, &mut rng);
            let times: Vec<f64> = cfgs.iter().map(|c| k.ideal_time(c)).collect();
            assert!(
                times.iter().all(|&t| t.is_finite() && t > 0.0),
                "{} produced a bad time",
                k.name()
            );
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                max / min > 1.2,
                "{}: surface too flat ({min}..{max})",
                k.name()
            );
        }
    }

    #[test]
    fn measurement_noise_averages_out() {
        let k = kernel_by_name("mm").expect("mm exists");
        let mut rng = Xoshiro256PlusPlus::new(7);
        let cfg = k.space().sample(&mut rng);
        let ideal = k.ideal_time(&cfg);
        let avg = k.measure_averaged(&cfg, 200, &mut rng);
        assert!(
            (avg - ideal).abs() / ideal < 0.05,
            "avg {avg} vs ideal {ideal}"
        );
    }

    #[test]
    fn decode_roundtrips_identity_levels() {
        let k = kernel_by_name("mm").expect("mm exists");
        // All-level-zero config: tiles 1 (off), unroll 1, regtile 1, flags off.
        let cfg = Configuration::new(vec![0; k.space().dim()]);
        let ts = k.decode(&cfg);
        for t in &ts {
            assert!(t.tiles.iter().all(|&(a, b)| a == 1 && b == 1));
            assert!(t.unroll.iter().all(|&u| u == 1));
            assert!(t.regtile.iter().all(|&u| u == 1));
            assert!(!t.scalar_replace && !t.vectorize);
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let names: Vec<String> = all_kernels()
            .iter()
            .chain(&extended_kernels())
            .map(|k| k.name().to_string())
            .collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert!(kernel_by_name("nonexistent").is_none());
    }

    #[test]
    fn extended_suite_is_well_formed() {
        let extra = extended_kernels();
        assert_eq!(extra.len(), 3);
        let mut rng = Xoshiro256PlusPlus::new(88);
        for k in &extra {
            assert!((8..=38).contains(&k.space().dim()), "{}", k.name());
            let cfgs = k.space().sample_distinct(16, &mut rng);
            for c in &cfgs {
                let t = k.ideal_time(c);
                assert!(t.is_finite() && t > 0.0, "{}: {t}", k.name());
            }
        }
        // Reachable through lookup.
        assert!(kernel_by_name("mvt").is_some());
        assert!(kernel_by_name("seidel").is_some());
        assert!(kernel_by_name("trmm").is_some());
        // The paper set stays exactly 12.
        assert_eq!(all_kernels().len(), 12);
    }
}
