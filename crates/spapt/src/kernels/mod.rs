//! The 12 simulated SPAPT kernels, plus a six-kernel extended suite that
//! completes SPAPT's 18 search problems (see [`extended_kernels`]).
//!
//! Each kernel is a list of [`BlockSpec`]s — loop nests that Orio would tune
//! independently after loop distribution (e.g. ADI's two statements). The
//! kernel's parameter space is generated mechanically from the blocks,
//! following SPAPT's conventions:
//!
//! - every tiled loop contributes **two** tile parameters (outer and inner
//!   level) with values `{1, 16, 32, 64, 128, 256, 512}` (1 = disabled);
//! - every unrollable loop contributes an unroll-jam factor `1..=31`;
//! - every register-tiled loop contributes a factor `{1, 8, 32}`;
//! - every block contributes a `scalarreplace` and a `vector` boolean.
//!
//! This reproduces Table I exactly for ADI (8 tile + 4 unroll-jam +
//! 4 regtile + 2 scalarreplace + 2 vector = 20 parameters) and puts every
//! kernel inside the paper's 8–38-parameter, 10¹⁰–10³⁰-point regime.

mod adi;
mod atax;
mod bicg;
mod correlation;
mod covariance;
mod dgemv3;
mod fdtd;
mod gemver;
mod gesummv;
mod hessian;
mod jacobi;
mod lu;
mod mm;
mod mvt;
mod seidel;
mod stencil3d;
mod tensor;
mod trmm;

use pwu_space::{ConfigLegality, Configuration, MeasureOutcome, Param, ParamSpace, TuningTarget};
use pwu_stats::Xoshiro256PlusPlus;
use rayon::prelude::IntoParallelRefIterator;

use crate::cost::estimate_time;
use crate::evalcache::{CachedEval, EvalCache};
use crate::fault::FaultModel;
use crate::ir::LoopNest;
use crate::machine::MachineModel;
use crate::noise::NoiseModel;
use crate::transform::{BlockLegality, BlockTransform};

/// SPAPT tile-size levels (1 disables tiling at that level).
pub const TILE_VALUES: [f64; 7] = [1.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
/// SPAPT register-tile factors.
pub const REGTILE_VALUES: [f64; 3] = [1.0, 8.0, 32.0];
/// SPAPT unroll-jam factors 1..=31.
#[must_use]
pub fn unroll_values() -> Vec<f64> {
    (1..=31).map(f64::from).collect()
}

/// One independently tuned loop nest of a kernel.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Short block label used in parameter names.
    pub label: &'static str,
    /// The loop nest.
    pub nest: LoopNest,
    /// Loops (by index) that receive two-level tiling parameters.
    pub tiled: Vec<usize>,
    /// Loops that receive unroll-jam parameters.
    pub unrolled: Vec<usize>,
    /// Loops that receive register-tile parameters.
    pub regtiled: Vec<usize>,
}

/// How one space parameter maps onto a block transformation.
#[derive(Debug, Clone, Copy)]
enum ParamRole {
    TileOuter { block: usize, loop_idx: usize },
    TileInner { block: usize, loop_idx: usize },
    Unroll { block: usize, loop_idx: usize },
    RegTile { block: usize, loop_idx: usize },
    ScalarReplace { block: usize },
    Vector { block: usize },
}

/// A simulated SPAPT kernel: blocks + parameter space + machine + noise.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    blocks: Vec<BlockSpec>,
    space: ParamSpace,
    roles: Vec<ParamRole>,
    machine: MachineModel,
    noise: NoiseModel,
    repeats: usize,
    /// Per-block legality masks; `None` until a dependence analysis attaches
    /// them (see `pwu-analyze`).
    legality: Option<Vec<BlockLegality>>,
    /// Fault-injection model; `None` keeps measurement infallible (and
    /// bit-identical to the pre-fault-model behaviour).
    faults: Option<FaultModel>,
    /// Memo for the pure, RNG-free half of measurement (base cost, legality,
    /// aggressiveness), keyed by encoded levels. Cloning a kernel yields a
    /// cold cache; builders that change the evaluation surface clear it.
    cache: EvalCache,
}

impl Kernel {
    /// Assembles a kernel from its blocks on Platform A with the paper's
    /// measurement protocol (35 repeats, quiet-node noise).
    #[must_use]
    pub fn new(name: impl Into<String>, blocks: Vec<BlockSpec>) -> Self {
        let name = name.into();
        for b in &blocks {
            b.nest.validate();
        }
        let mut params = Vec::new();
        let mut roles = Vec::new();
        // Tile parameters: outer then inner per (block, loop), block-major.
        for (bi, b) in blocks.iter().enumerate() {
            for &l in &b.tiled {
                let lname = &b.nest.loops[l].name;
                params.push(Param::ordinal(
                    format!("T1_{}_{}", b.label, lname),
                    TILE_VALUES.to_vec(),
                ));
                roles.push(ParamRole::TileOuter {
                    block: bi,
                    loop_idx: l,
                });
                params.push(Param::ordinal(
                    format!("T2_{}_{}", b.label, lname),
                    TILE_VALUES.to_vec(),
                ));
                roles.push(ParamRole::TileInner {
                    block: bi,
                    loop_idx: l,
                });
            }
        }
        for (bi, b) in blocks.iter().enumerate() {
            for &l in &b.unrolled {
                params.push(Param::ordinal(
                    format!("U_{}_{}", b.label, b.nest.loops[l].name),
                    unroll_values(),
                ));
                roles.push(ParamRole::Unroll {
                    block: bi,
                    loop_idx: l,
                });
            }
        }
        for (bi, b) in blocks.iter().enumerate() {
            for &l in &b.regtiled {
                params.push(Param::ordinal(
                    format!("RT_{}_{}", b.label, b.nest.loops[l].name),
                    REGTILE_VALUES.to_vec(),
                ));
                roles.push(ParamRole::RegTile {
                    block: bi,
                    loop_idx: l,
                });
            }
        }
        for (bi, b) in blocks.iter().enumerate() {
            params.push(Param::boolean(format!("SCR_{}", b.label)));
            roles.push(ParamRole::ScalarReplace { block: bi });
        }
        for (bi, b) in blocks.iter().enumerate() {
            params.push(Param::boolean(format!("VEC_{}", b.label)));
            roles.push(ParamRole::Vector { block: bi });
        }
        let space = ParamSpace::new(name.clone(), params);
        Self {
            name,
            blocks,
            space,
            roles,
            machine: MachineModel::platform_a(),
            noise: NoiseModel::quiet(),
            repeats: 35,
            legality: None,
            faults: None,
            cache: EvalCache::new(),
        }
    }

    /// Attaches per-block legality masks from a dependence analysis.
    ///
    /// With masks attached, [`Kernel::ideal_time`] evaluates the *clamped*
    /// transformations (the simulated compiler declines unsafe requests) and
    /// [`TuningTarget::lint_config`] classifies configurations so searchers
    /// can exclude illegal ones.
    ///
    /// # Panics
    /// Panics if the masks do not match the blocks in count or depth.
    #[must_use]
    pub fn with_legality(mut self, legality: Vec<BlockLegality>) -> Self {
        assert_eq!(legality.len(), self.blocks.len(), "one mask per block");
        for (mask, block) in legality.iter().zip(&self.blocks) {
            assert_eq!(
                mask.depth(),
                block.nest.depth(),
                "mask depth mismatch on block {}",
                block.label
            );
        }
        self.legality = Some(legality);
        // Masks change legality verdicts and clamped costs; memoized
        // evaluations are stale.
        self.cache.clear();
        self
    }

    /// The attached legality masks, if any.
    #[must_use]
    pub fn legality(&self) -> Option<&[BlockLegality]> {
        self.legality.as_deref()
    }

    /// Replaces the noise model (tests use [`NoiseModel::none`]).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches a fault-injection model; measurement through
    /// [`TuningTarget::try_measure`] then becomes fallible.
    ///
    /// A disabled model (see [`FaultModel::is_enabled`]) is treated exactly
    /// like no model at all: the fallible path consumes the same RNG stream
    /// and returns the same readings as the infallible one.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The attached fault model, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultModel> {
        self.faults.as_ref()
    }

    /// True when a configuration requests an *aggressive* transformation —
    /// deep unroll-jam (factor ≥ 16) on any loop of any block. Aggressive
    /// configurations blow up generated-code size, which is what makes real
    /// Orio compiles fail; the fault model boosts their compile-failure
    /// probability.
    #[must_use]
    pub fn is_aggressive(&self, cfg: &Configuration) -> bool {
        self.cached_decoded(cfg).aggressive
    }

    /// [`Kernel::is_aggressive`] bypassing the evaluation cache — the
    /// reference path the memoized verdict must agree with bit-for-bit.
    #[must_use]
    pub fn is_aggressive_uncached(&self, cfg: &Configuration) -> bool {
        self.decode(cfg)
            .iter()
            .any(|t| t.unroll.iter().any(|&u| u >= 16))
    }

    /// Moves the kernel to a different machine model.
    ///
    /// Supports the paper's future-work direction — studying the
    /// *portability* of performance models across platforms: the same
    /// parameter space evaluated on another machine yields a shifted but
    /// correlated surface (see the `transfer` harness binary).
    #[must_use]
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        // The base cost is a function of the machine; memoized times are
        // stale (legality/aggressiveness would survive, but a mixed cache
        // is not worth the bookkeeping).
        self.cache.clear();
        self
    }

    /// Replaces the measurement repeat count.
    #[must_use]
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        assert!(repeats > 0);
        self.repeats = repeats;
        self
    }

    /// Measurement repeats used by the protocol (35, per the paper).
    #[must_use]
    pub fn repeats(&self) -> usize {
        self.repeats
    }

    /// The kernel's blocks.
    #[must_use]
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// The machine the kernel "runs" on.
    #[must_use]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Decodes a configuration into one transformation per block.
    #[must_use]
    pub fn decode(&self, cfg: &Configuration) -> Vec<BlockTransform> {
        self.space.validate(cfg);
        let mut transforms: Vec<BlockTransform> = self
            .blocks
            .iter()
            .map(|b| BlockTransform::identity(b.nest.depth()))
            .collect();
        for (role, (_, value)) in self.roles.iter().zip(self.space.values(cfg)) {
            match (*role, value) {
                (ParamRole::TileOuter { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].tiles[loop_idx].0 = v as u64;
                }
                (ParamRole::TileInner { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].tiles[loop_idx].1 = v as u64;
                }
                (ParamRole::Unroll { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].unroll[loop_idx] = v as u64;
                }
                (ParamRole::RegTile { block, loop_idx }, pwu_space::Value::Number(v)) => {
                    transforms[block].regtile[loop_idx] = v as u64;
                }
                (ParamRole::ScalarReplace { block }, pwu_space::Value::Flag(f)) => {
                    transforms[block].scalar_replace = f;
                }
                (ParamRole::Vector { block }, pwu_space::Value::Flag(f)) => {
                    transforms[block].vectorize = f;
                }
                (role, value) => unreachable!("role {role:?} got value {value:?}"),
            }
        }
        transforms
    }

    /// Decodes a configuration and clamps each block's transformation
    /// against the attached legality masks (identity clamp when no masks
    /// are attached).
    ///
    /// Returns the transformations together with the configuration's
    /// legality verdict: the worst [`BlockLegality::classify`] result over
    /// the blocks.
    #[must_use]
    pub fn decode_legal(&self, cfg: &Configuration) -> (Vec<BlockTransform>, ConfigLegality) {
        let (transforms, legality, _) = self.eval_parts(cfg);
        (transforms, legality)
    }

    /// One decode pass producing everything the evaluation cache stores
    /// alongside the clamped transformations: the legality verdict (worst
    /// classification over the blocks, in block order — the historical
    /// `decode_legal` fold) and the raw-decode aggressiveness flag.
    fn eval_parts(&self, cfg: &Configuration) -> (Vec<BlockTransform>, ConfigLegality, bool) {
        let raw = self.decode(cfg);
        let aggressive = raw.iter().any(|t| t.unroll.iter().any(|&u| u >= 16));
        let Some(masks) = &self.legality else {
            return (raw, ConfigLegality::Legal, aggressive);
        };
        let mut worst = ConfigLegality::Legal;
        let clamped = raw
            .iter()
            .zip(masks)
            .map(|(t, mask)| {
                worst = worst.max(mask.classify(t));
                mask.clamp(t).0
            })
            .collect();
        (clamped, worst, aggressive)
    }

    /// The decode-derived cache entry (legality + aggressiveness) for `cfg`,
    /// computed via the cheap decode+clamp pass on a miss. Pool linting
    /// classifies thousands of never-measured configurations, so this stage
    /// must not touch the cost model.
    fn cached_decoded(&self, cfg: &Configuration) -> CachedEval {
        self.cache.decoded(cfg, || {
            let (_, legality, aggressive) = self.eval_parts(cfg);
            CachedEval {
                legality,
                aggressive,
                ideal_time: None,
            }
        })
    }

    /// [`TuningTarget::ideal_time`] bypassing the evaluation cache — the
    /// exact pre-memoization computation, kept public as the reference path
    /// for the bit-identity property suite and the perf-harness baseline.
    #[must_use]
    pub fn ideal_time_uncached(&self, cfg: &Configuration) -> f64 {
        let (transforms, _) = self.decode_legal(cfg);
        transforms
            .iter()
            .zip(&self.blocks)
            .map(|(t, b)| estimate_time(&b.nest, t, &self.machine))
            .sum()
    }

    /// The kernel's measurement-noise model.
    #[must_use]
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The evaluation cache (monitoring and tests).
    #[must_use]
    pub fn eval_cache(&self) -> &EvalCache {
        &self.cache
    }
}

impl TuningTarget for Kernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn ideal_time(&self, cfg: &Configuration) -> f64 {
        self.cache.ideal_time(cfg, || {
            let (transforms, legality, aggressive) = self.eval_parts(cfg);
            let t = transforms
                .iter()
                .zip(&self.blocks)
                .map(|(t, b)| estimate_time(&b.nest, t, &self.machine))
                .sum();
            CachedEval {
                legality,
                aggressive,
                ideal_time: Some(t),
            }
        })
    }

    fn ideal_times(&self, cfgs: &[Configuration]) -> Vec<f64> {
        // Memoization makes each evaluation independent and pure, so the
        // batch fans out over the thread pool; the ordered reduction keeps
        // element i equal to the sequential ideal_time(&cfgs[i]).
        cfgs.par_iter().map(|cfg| self.ideal_time(cfg)).collect()
    }

    fn lint_config(&self, cfg: &Configuration) -> ConfigLegality {
        self.cached_decoded(cfg).legality
    }

    fn measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.noise.perturb(self.ideal_time(cfg), rng)
    }

    fn try_measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> MeasureOutcome {
        let Some(fm) = self.faults.as_ref().filter(|fm| fm.is_enabled()) else {
            return MeasureOutcome::Ok(self.measure(cfg, rng));
        };
        if fm.compile_fails(cfg, self.is_aggressive(cfg)) {
            return MeasureOutcome::Failed {
                kind: pwu_space::FailureKind::Compile,
                cost: fm.compile_cost,
            };
        }
        fm.measure_transient(self.ideal_time(cfg), rng, |ideal, rng| {
            self.noise.perturb(ideal, rng)
        })
    }

    fn measure_averaged(
        &self,
        cfg: &Configuration,
        repeats: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> f64 {
        assert!(repeats > 0, "need at least one repeat");
        let ideal = self.ideal_time(cfg);
        (0..repeats)
            .map(|_| self.noise.perturb(ideal, rng))
            .sum::<f64>()
            / repeats as f64
    }
}

/// Builds all 12 kernels in the paper's order.
#[must_use]
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        adi::build(),
        atax::build(),
        bicg::build(),
        correlation::build(),
        dgemv3::build(),
        fdtd::build(),
        gemver::build(),
        gesummv::build(),
        hessian::build(),
        jacobi::build(),
        lu::build(),
        mm::build(),
    ]
}

/// The extended suite: six additional SPAPT-style problems beyond the 12
/// the paper selected — SPAPT defines 18, and the paper skipped six whose
/// transformation/compilation was too slow to evaluate. These exercise
/// access patterns the core 12 lack: coupled transpose matvecs (`mvt`),
/// in-place 9-point relaxation (`seidel`), triangular matrix products
/// (`trmm`), symmetric column-pair accumulation (`covariance`), a 7-point
/// 3-D sweep (`stencil3d`) and a four-deep tensor contraction (`tensor`).
#[must_use]
pub fn extended_kernels() -> Vec<Kernel> {
    vec![
        mvt::build(),
        seidel::build(),
        trmm::build(),
        covariance::build(),
        stencil3d::build(),
        tensor::build(),
    ]
}

/// Looks a kernel up by name, searching the paper's 12 and the extended
/// suite.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels()
        .into_iter()
        .chain(extended_kernels())
        .find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_kernels_with_spapt_scale_spaces() {
        let kernels = all_kernels();
        assert_eq!(kernels.len(), 12);
        for k in &kernels {
            let d = k.space().dim();
            assert!(
                (8..=38).contains(&d),
                "{}: {d} parameters outside SPAPT's 8–38",
                k.name()
            );
            assert!(
                k.space().cardinality() >= 10u128.pow(9),
                "{}: space too small ({})",
                k.name(),
                k.space().cardinality()
            );
        }
    }

    #[test]
    fn adi_matches_table_one_parameter_counts() {
        let adi = kernel_by_name("adi").expect("adi exists");
        let names: Vec<&str> = adi
            .space()
            .params()
            .iter()
            .map(pwu_space::Param::name)
            .collect();
        let count = |prefix: &str| names.iter().filter(|n| n.starts_with(prefix)).count();
        assert_eq!(count("T1_") + count("T2_"), 8, "tile params");
        assert_eq!(count("U_"), 4, "unroll-jam params");
        assert_eq!(count("RT_"), 4, "regtile params");
        assert_eq!(count("SCR_"), 2, "scalarreplace params");
        assert_eq!(count("VEC_"), 2, "vector params");
        assert_eq!(adi.space().dim(), 20);
    }

    #[test]
    fn ideal_times_positive_finite_and_varied() {
        let mut rng = Xoshiro256PlusPlus::new(42);
        for k in all_kernels() {
            let cfgs = k.space().sample_distinct(32, &mut rng);
            let times: Vec<f64> = cfgs.iter().map(|c| k.ideal_time(c)).collect();
            assert!(
                times.iter().all(|&t| t.is_finite() && t > 0.0),
                "{} produced a bad time",
                k.name()
            );
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                max / min > 1.2,
                "{}: surface too flat ({min}..{max})",
                k.name()
            );
        }
    }

    #[test]
    fn measurement_noise_averages_out() {
        let k = kernel_by_name("mm").expect("mm exists");
        let mut rng = Xoshiro256PlusPlus::new(7);
        let cfg = k.space().sample(&mut rng);
        let ideal = k.ideal_time(&cfg);
        let avg = k.measure_averaged(&cfg, 200, &mut rng);
        assert!(
            (avg - ideal).abs() / ideal < 0.05,
            "avg {avg} vs ideal {ideal}"
        );
    }

    #[test]
    fn decode_roundtrips_identity_levels() {
        let k = kernel_by_name("mm").expect("mm exists");
        // All-level-zero config: tiles 1 (off), unroll 1, regtile 1, flags off.
        let cfg = Configuration::new(vec![0; k.space().dim()]);
        let ts = k.decode(&cfg);
        for t in &ts {
            assert!(t.tiles.iter().all(|&(a, b)| a == 1 && b == 1));
            assert!(t.unroll.iter().all(|&u| u == 1));
            assert!(t.regtile.iter().all(|&u| u == 1));
            assert!(!t.scalar_replace && !t.vectorize);
        }
    }

    #[test]
    fn legality_masks_drive_lint_and_clamp_ideal_time() {
        let base = kernel_by_name("mm").expect("mm exists");
        let dim = base.space().dim();
        // mm has one block of depth 3; params are block-major:
        // T1/T2 × 3 loops, then U × 3, RT × 3, SCR, VEC.
        let mut levels = vec![0u32; dim];
        levels[0] = 1; // T1 of loop i → 16: loop i becomes tiled.
        let tiled_cfg = Configuration::new(levels);
        let identity_cfg = Configuration::new(vec![0; dim]);

        // Without masks nothing is restricted.
        assert_eq!(
            base.lint_config(&tiled_cfg),
            pwu_space::ConfigLegality::Legal
        );

        let mut mask = BlockLegality::permissive(3);
        mask.tile_ok[0] = false;
        let k = kernel_by_name("mm")
            .expect("mm exists")
            .with_legality(vec![mask]);
        assert!(k.legality().is_some());
        assert_eq!(
            k.lint_config(&tiled_cfg),
            pwu_space::ConfigLegality::Illegal
        );
        assert_eq!(
            k.lint_config(&identity_cfg),
            pwu_space::ConfigLegality::Legal
        );
        // The clamped evaluation treats the illegal request as declined.
        assert_eq!(k.ideal_time(&tiled_cfg), base.ideal_time(&identity_cfg));
        assert_ne!(base.ideal_time(&tiled_cfg), base.ideal_time(&identity_cfg));
    }

    #[test]
    fn kernel_names_are_unique() {
        let names: Vec<String> = all_kernels()
            .iter()
            .chain(&extended_kernels())
            .map(|k| k.name().to_string())
            .collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert!(kernel_by_name("nonexistent").is_none());
    }

    #[test]
    fn extended_suite_is_well_formed() {
        let extra = extended_kernels();
        assert_eq!(extra.len(), 6, "full SPAPT scale: 12 + 6 = 18 problems");
        let mut rng = Xoshiro256PlusPlus::new(88);
        for k in &extra {
            assert!((8..=38).contains(&k.space().dim()), "{}", k.name());
            let cfgs = k.space().sample_distinct(16, &mut rng);
            for c in &cfgs {
                let t = k.ideal_time(c);
                assert!(t.is_finite() && t > 0.0, "{}: {t}", k.name());
            }
        }
        // Reachable through lookup.
        for name in ["mvt", "seidel", "trmm", "covariance", "stencil3d", "tensor"] {
            assert!(kernel_by_name(name).is_some(), "{name} missing");
        }
        // The paper set stays exactly 12.
        assert_eq!(all_kernels().len(), 12);
    }
}
