//! MM: dense matrix-matrix multiplication `C[i][j] += A[i][k]·B[k][j]` —
//! the canonical tiling benchmark.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 512;

fn mm_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
            LoopDim {
                name: "k".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(2)]), // A[i][k]
                ArrayRef::new(1, vec![v(2), v(1)]), // B[k][j]
                ArrayRef::new(2, vec![v(0), v(1)]), // C[i][j]
            ],
            writes: vec![ArrayRef::new(2, vec![v(0), v(1)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("C", vec![N, N]),
        ],
    }
}

/// Builds the `mm` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "mm",
        vec![BlockSpec {
            label: "c",
            nest: mm_nest(),
            tiled: vec![0, 1, 2],
            unrolled: vec![0, 1, 2],
            regtiled: vec![0, 1, 2],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::{Configuration, TuningTarget};

    #[test]
    fn tiled_mm_beats_untiled() {
        let k = build();
        let untiled = Configuration::new(vec![0; 14]);
        // Tiles of 32 on all three loops at the inner level: T1 stays 1
        // (level 0), T2 = 32 (level 2 of TILE_VALUES).
        let mut levels = vec![0u32; 14];
        levels[1] = 2;
        levels[3] = 2;
        levels[5] = 2;
        let tiled = Configuration::new(levels);
        assert!(k.ideal_time(&tiled) < k.ideal_time(&untiled));
    }
}
