//! Covariance: the symmetric-accumulation core of the covariance matrix,
//! `cov[j1][j2] += (data[i][j1] - mean[j1]) * (data[i][j2] - mean[j2])`.
//!
//! Like `correlation`'s second block but without the per-column scaling: a
//! three-deep nest whose two outer loops stream two columns of `data` while
//! the reduction loop `i` runs innermost. Part of the extended SPAPT suite.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 500;
const M: u64 = 500;

fn cov_nest() -> LoopNest {
    let nl = 3; // j1, j2, i
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "j1".into(),
                extent: M,
            },
            LoopDim {
                name: "j2".into(),
                extent: M,
            },
            LoopDim {
                name: "i".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(2), v(0)]),
                ArrayRef::new(0, vec![v(2), v(1)]),
                ArrayRef::new(1, vec![v(0)]),
                ArrayRef::new(1, vec![v(1)]),
                ArrayRef::new(2, vec![v(0), v(1)]),
            ],
            writes: vec![ArrayRef::new(2, vec![v(0), v(1)])],
            adds: 3,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("data", vec![N, M]),
            ArrayDecl::doubles("mean", vec![M]),
            ArrayDecl::doubles("cov", vec![M, M]),
        ],
    }
}

/// Builds the `covariance` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "covariance",
        vec![BlockSpec {
            label: "cov",
            nest: cov_nest(),
            tiled: vec![0, 1, 2],
            unrolled: vec![0, 1, 2],
            regtiled: vec![0, 1, 2],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn covariance_dimensions() {
        // 6 tile + 3 unroll + 3 regtile + 1 scalarreplace + 1 vector.
        assert_eq!(build().space().dim(), 14);
    }
}
