//! GESUMMV: `y = α·A·x + β·B·x` — two matvecs sharing the input vector plus
//! a scaled vector combination.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

/// The fused double matvec: `tmp[i] += A[i][j]x[j]; y[i] += B[i][j]x[j]`.
fn mv_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
        ],
        stmts: vec![
            Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(0), v(1)]), // A
                    ArrayRef::new(2, vec![v(1)]),       // x[j]
                    ArrayRef::new(3, vec![v(0)]),       // tmp[i]
                ],
                writes: vec![ArrayRef::new(3, vec![v(0)])],
                adds: 1,
                muls: 1,
                divs: 0,
            },
            Statement {
                reads: vec![
                    ArrayRef::new(1, vec![v(0), v(1)]), // B
                    ArrayRef::new(2, vec![v(1)]),       // x[j]
                    ArrayRef::new(4, vec![v(0)]),       // y[i]
                ],
                writes: vec![ArrayRef::new(4, vec![v(0)])],
                adds: 1,
                muls: 1,
                divs: 0,
            },
        ],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("x", vec![N]),
            ArrayDecl::doubles("tmp", vec![N]),
            ArrayDecl::doubles("y", vec![N]),
        ],
    }
}

/// `y[i] = α·tmp[i] + β·y[i]`.
fn combine_nest() -> LoopNest {
    let nl = 1;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![LoopDim {
            name: "i".into(),
            extent: N,
        }],
        stmts: vec![Statement {
            reads: vec![ArrayRef::new(0, vec![v(0)]), ArrayRef::new(1, vec![v(0)])],
            writes: vec![ArrayRef::new(1, vec![v(0)])],
            adds: 1,
            muls: 2,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("tmp", vec![N]),
            ArrayDecl::doubles("y", vec![N]),
        ],
    }
}

/// Builds the `gesummv` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "gesummv",
        vec![
            BlockSpec {
                label: "mv",
                nest: mv_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "cb",
                nest: combine_nest(),
                tiled: vec![0],
                unrolled: vec![0],
                regtiled: vec![0],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn gesummv_dimensions() {
        let k = build();
        // tiles (2+1)×2=6, unroll 3, regtile 3, scr 2, vec 2 → 16.
        assert_eq!(k.space().dim(), 16);
    }
}
