//! Correlation-matrix kernel: column statistics plus the `M×M` pairwise
//! correlation accumulation over an `N×M` data matrix.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 500; // rows (observations)
const M: u64 = 500; // columns (variables)

/// Column means and second moments: loops (j, i) over data[i][j].
fn stats_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "j".into(),
                extent: M,
            },
            LoopDim {
                name: "i".into(),
                extent: N,
            },
        ],
        stmts: vec![
            Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(1), v(0)]), // data[i][j]
                    ArrayRef::new(1, vec![v(0)]),       // mean[j]
                ],
                writes: vec![ArrayRef::new(1, vec![v(0)])],
                adds: 1,
                muls: 0,
                divs: 0,
            },
            Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(1), v(0)]), // data[i][j]
                    ArrayRef::new(2, vec![v(0)]),       // stddev[j]
                ],
                writes: vec![ArrayRef::new(2, vec![v(0)])],
                adds: 1,
                muls: 1,
                divs: 0,
            },
        ],
        arrays: vec![
            ArrayDecl::doubles("data", vec![N, M]),
            ArrayDecl::doubles("mean", vec![M]),
            ArrayDecl::doubles("stddev", vec![M]),
        ],
    }
}

/// Correlation accumulation: loops (j1, j2, i).
fn corr_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "j1".into(),
                extent: M,
            },
            LoopDim {
                name: "j2".into(),
                extent: M,
            },
            LoopDim {
                name: "i".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(2), v(0)]), // data[i][j1]
                ArrayRef::new(0, vec![v(2), v(1)]), // data[i][j2]
                ArrayRef::new(1, vec![v(0), v(1)]), // corr[j1][j2]
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("data", vec![N, M]),
            ArrayDecl::doubles("corr", vec![M, M]),
        ],
    }
}

/// Builds the `correlation` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "correlation",
        vec![
            BlockSpec {
                label: "ms",
                nest: stats_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "cr",
                nest: corr_nest(),
                tiled: vec![0, 1, 2],
                unrolled: vec![0, 1, 2],
                regtiled: vec![0, 1, 2],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn correlation_dimensions() {
        let k = build();
        // tiles: (2+3)×2=10, unroll 5, regtile 5, scr 2, vec 2 → 24.
        assert_eq!(k.space().dim(), 24);
        let cfg = pwu_space::Configuration::new(vec![0; 24]);
        assert!(k.ideal_time(&cfg) > 0.0);
    }
}
