//! TRMM: triangular matrix-matrix multiply `B = A·B` with lower-triangular
//! `A` (extended suite). The triangular bound is modeled with the full
//! rectangular nest at half the flop density, preserving the access pattern.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 512;

fn trmm_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
            LoopDim {
                name: "k".into(),
                extent: N / 2, // triangular: half the inner trips on average
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(2)]), // A[i][k]
                ArrayRef::new(1, vec![v(2), v(1)]), // B[k][j]
                ArrayRef::new(1, vec![v(0), v(1)]), // B[i][j]
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
        ],
    }
}

/// Builds the `trmm` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "trmm",
        vec![BlockSpec {
            label: "tm",
            nest: trmm_nest(),
            tiled: vec![0, 1, 2],
            unrolled: vec![0, 1, 2],
            regtiled: vec![0, 1, 2],
        }],
    )
}
