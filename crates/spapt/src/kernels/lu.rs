//! LU: the Gaussian-elimination update kernel
//! `A[i][j] -= A[i][k]·A[k][j]` over a rectangular `(k, i, j)` nest.
//!
//! The real LU nest is triangular; SPAPT's tunable version (like `PolyBench`'s)
//! is modeled here with the full rectangular bound, which preserves the
//! locality structure the transformations act on.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 512;

fn lu_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "k".into(),
                extent: N,
            },
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(1), v(2)]), // A[i][j]
                ArrayRef::new(0, vec![v(1), v(0)]), // A[i][k]
                ArrayRef::new(0, vec![v(0), v(2)]), // A[k][j]
            ],
            writes: vec![ArrayRef::new(0, vec![v(1), v(2)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![ArrayDecl::doubles("A", vec![N, N])],
    }
}

/// Builds the `lu` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "lu",
        vec![BlockSpec {
            label: "up",
            nest: lu_nest(),
            tiled: vec![0, 1, 2],
            unrolled: vec![0, 1, 2],
            regtiled: vec![0, 1, 2],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn lu_dimensions() {
        // tiles 3×2=6, unroll 3, regtile 3, scr 1, vec 1 → 14.
        assert_eq!(build().space().dim(), 14);
    }
}
