//! `Stencil3D`: an out-of-place 7-point stencil sweep over a cubic grid,
//! `B[i][j][k] = c0*A[i][j][k] + c1*(six face neighbours)`.
//!
//! The three-dimensional analogue of `jacobi`'s sweep: no intra-sweep
//! dependences (reads `A`, writes `B`), but every spatial direction offers a
//! tiling choice and only the unit-stride `k` accesses vectorize cleanly.
//! Part of the extended SPAPT suite.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 256;

fn sweep_nest() -> LoopNest {
    let nl = 3; // i, j, k
    let v = |l| LinIndex::var(nl, l);
    let off = |l, o| LinIndex::var_plus(nl, l, o);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
            LoopDim {
                name: "k".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1), v(2)]),
                ArrayRef::new(0, vec![off(0, -1), v(1), v(2)]),
                ArrayRef::new(0, vec![off(0, 1), v(1), v(2)]),
                ArrayRef::new(0, vec![v(0), off(1, -1), v(2)]),
                ArrayRef::new(0, vec![v(0), off(1, 1), v(2)]),
                ArrayRef::new(0, vec![v(0), v(1), off(2, -1)]),
                ArrayRef::new(0, vec![v(0), v(1), off(2, 1)]),
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1), v(2)])],
            adds: 6,
            muls: 2,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N, N]),
            ArrayDecl::doubles("B", vec![N, N, N]),
        ],
    }
}

/// Builds the `stencil3d` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "stencil3d",
        vec![BlockSpec {
            label: "sw",
            nest: sweep_nest(),
            tiled: vec![0, 1, 2],
            unrolled: vec![0, 1, 2],
            regtiled: vec![0, 1, 2],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn stencil3d_dimensions() {
        // 6 tile + 3 unroll + 3 regtile + 1 scalarreplace + 1 vector.
        assert_eq!(build().space().dim(), 14);
    }
}
