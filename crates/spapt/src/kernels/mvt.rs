//! MVT: the two coupled matrix-vector products `x1 += A·y1; x2 += Aᵀ·y2`
//! (one of the six SPAPT problems the paper did not select; provided as part
//! of the extended suite).

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn nest(transpose: bool) -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    let (vec_idx, out_idx) = if transpose {
        (v(0), v(1))
    } else {
        (v(1), v(0))
    };
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]),
                ArrayRef::new(1, vec![vec_idx]),
                ArrayRef::new(2, vec![out_idx.clone()]),
            ],
            writes: vec![ArrayRef::new(2, vec![out_idx])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("y", vec![N]),
            ArrayDecl::doubles("x", vec![N]),
        ],
    }
}

/// Builds the `mvt` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "mvt",
        vec![
            BlockSpec {
                label: "x1",
                nest: nest(false),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "x2",
                nest: nest(true),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}
