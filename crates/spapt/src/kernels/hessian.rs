//! Hessian kernel: second-derivative stencils of a scalar field — the
//! diagonal terms (`gxx`, `gyy`) and the mixed term (`gxy`) as two blocks.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn loops2() -> Vec<LoopDim> {
    vec![
        LoopDim {
            name: "i".into(),
            extent: N,
        },
        LoopDim {
            name: "j".into(),
            extent: N,
        },
    ]
}

/// Diagonal second derivatives: 5-point star.
fn diag_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    let off = |l, o| LinIndex::var_plus(nl, l, o);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![off(0, 1), v(1)]),
                ArrayRef::new(0, vec![off(0, -1), v(1)]),
                ArrayRef::new(0, vec![v(0), off(1, 1)]),
                ArrayRef::new(0, vec![v(0), off(1, -1)]),
                ArrayRef::new(0, vec![v(0), v(1)]),
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1)])],
            adds: 5,
            muls: 2,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("f", vec![N, N]),
            ArrayDecl::doubles("gdiag", vec![N, N]),
        ],
    }
}

/// Mixed derivative: 4 corner points.
fn mixed_nest() -> LoopNest {
    let nl = 2;
    let off = |l, o| LinIndex::var_plus(nl, l, o);
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![off(0, 1), off(1, 1)]),
                ArrayRef::new(0, vec![off(0, 1), off(1, -1)]),
                ArrayRef::new(0, vec![off(0, -1), off(1, 1)]),
                ArrayRef::new(0, vec![off(0, -1), off(1, -1)]),
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1)])],
            adds: 3,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("f", vec![N, N]),
            ArrayDecl::doubles("gxy", vec![N, N]),
        ],
    }
}

/// Builds the `hessian` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "hessian",
        vec![
            BlockSpec {
                label: "dg",
                nest: diag_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "xy",
                nest: mixed_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn hessian_dimensions() {
        assert_eq!(build().space().dim(), 20);
    }
}
