//! DGEMV3: three chained dense matrix-vector products (SPAPT's largest
//! matvec problem, 30 parameters here).

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 3000;

fn matvec_nest(mat: &str, xin: &str, xout: &str) -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]),
                ArrayRef::new(1, vec![v(1)]),
                ArrayRef::new(2, vec![v(0)]),
            ],
            writes: vec![ArrayRef::new(2, vec![v(0)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles(mat, vec![N, N]),
            ArrayDecl::doubles(xin, vec![N]),
            ArrayDecl::doubles(xout, vec![N]),
        ],
    }
}

/// Builds the `dgemv3` kernel.
#[must_use]
pub fn build() -> Kernel {
    let block = |label: &'static str, mat: &str, xin: &str, xout: &str| BlockSpec {
        label,
        nest: matvec_nest(mat, xin, xout),
        tiled: vec![0, 1],
        unrolled: vec![0, 1],
        regtiled: vec![0, 1],
    };
    Kernel::new(
        "dgemv3",
        vec![
            block("g1", "A", "x", "y1"),
            block("g2", "B", "y1", "y2"),
            block("g3", "C", "y2", "y3"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn dgemv3_has_thirty_parameters() {
        let k = build();
        assert_eq!(k.space().dim(), 30);
        assert!(k.space().cardinality() > 10u128.pow(15));
    }
}
