//! ADI: alternating-direction-implicit stencil (Listing 1 of the paper).
//!
//! Two statements over `N×N` arrays, each division-heavy:
//!
//! ```c
//! X[i][j] = X[i][j] - X[i][j-1] * A[i][j] / B[i][j-1];
//! B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j-1];
//! ```
//!
//! Orio distributes the two statements, so each becomes its own tunable
//! block. Parameter counts match Table I: 8 tile, 4 unroll-jam, 4 regtile,
//! 2 scalarreplace, 2 vector.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn x_update_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    let vm = |l| LinIndex::var_plus(nl, l, -1);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i1".into(),
                extent: N,
            },
            LoopDim {
                name: "i2".into(),
                extent: N - 1,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]),  // X[i1][i2]
                ArrayRef::new(0, vec![v(0), vm(1)]), // X[i1][i2-1]
                ArrayRef::new(1, vec![v(0), v(1)]),  // A[i1][i2]
                ArrayRef::new(2, vec![v(0), vm(1)]), // B[i1][i2-1]
            ],
            writes: vec![ArrayRef::new(0, vec![v(0), v(1)])],
            adds: 1,
            muls: 1,
            divs: 1,
        }],
        arrays: vec![
            ArrayDecl::doubles("X", vec![N, N]),
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
        ],
    }
}

fn b_update_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    let vm = |l| LinIndex::var_plus(nl, l, -1);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i1".into(),
                extent: N,
            },
            LoopDim {
                name: "i2".into(),
                extent: N - 1,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]),  // B[i1][i2]
                ArrayRef::new(1, vec![v(0), v(1)]),  // A[i1][i2]
                ArrayRef::new(0, vec![v(0), vm(1)]), // B[i1][i2-1]
            ],
            writes: vec![ArrayRef::new(0, vec![v(0), v(1)])],
            adds: 1,
            muls: 1,
            divs: 1,
        }],
        arrays: vec![
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("A", vec![N, N]),
        ],
    }
}

/// Builds the `adi` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "adi",
        vec![
            BlockSpec {
                label: "s1",
                nest: x_update_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "s2",
                nest: b_update_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn adi_has_twenty_parameters_and_divisions_dominate() {
        let k = build();
        assert_eq!(k.space().dim(), 20);
        // Division latency should make ADI meaningfully slower than its pure
        // memory traffic would suggest: identity config time at least 10 ms.
        let cfg = pwu_space::Configuration::new(vec![0; 20]);
        let t = k.ideal_time(&cfg);
        assert!(t > 5e-3, "adi identity time {t}");
    }
}
