//! GEMVER: the BLAS-like composite
//! `B = A + u1·v1ᵀ + u2·v2ᵀ; x = β·Bᵀy + z; w = α·B·x`.
//!
//! Four blocks with very different access patterns: a rank-2 update, a
//! transposed matvec (strided inner loop), a vector add, and a plain matvec.
//! With 36 parameters this is the widest kernel space in the suite.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn loops2() -> Vec<LoopDim> {
    vec![
        LoopDim {
            name: "i".into(),
            extent: N,
        },
        LoopDim {
            name: "j".into(),
            extent: N,
        },
    ]
}

/// `B[i][j] = A[i][j] + u1[i]·v1[j] + u2[i]·v2[j]`.
fn rank2_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]), // A
                ArrayRef::new(2, vec![v(0)]),       // u1
                ArrayRef::new(3, vec![v(1)]),       // v1
                ArrayRef::new(4, vec![v(0)]),       // u2
                ArrayRef::new(5, vec![v(1)]),       // v2
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1)])], // B
            adds: 2,
            muls: 2,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("u1", vec![N]),
            ArrayDecl::doubles("v1", vec![N]),
            ArrayDecl::doubles("u2", vec![N]),
            ArrayDecl::doubles("v2", vec![N]),
        ],
    }
}

/// `x[i] += β·B[j][i]·y[j]` — the transposed product; inner loop `j` walks
/// `B` with stride `N`.
fn transposed_matvec_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(1), v(0)]), // B[j][i]
                ArrayRef::new(1, vec![v(1)]),       // y[j]
                ArrayRef::new(2, vec![v(0)]),       // x[i]
            ],
            writes: vec![ArrayRef::new(2, vec![v(0)])],
            adds: 1,
            muls: 2,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("y", vec![N]),
            ArrayDecl::doubles("x", vec![N]),
        ],
    }
}

/// `x[i] += z[i]`.
fn vadd_nest() -> LoopNest {
    let nl = 1;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: vec![LoopDim {
            name: "i".into(),
            extent: N,
        }],
        stmts: vec![Statement {
            reads: vec![ArrayRef::new(0, vec![v(0)]), ArrayRef::new(1, vec![v(0)])],
            writes: vec![ArrayRef::new(0, vec![v(0)])],
            adds: 1,
            muls: 0,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("x", vec![N]),
            ArrayDecl::doubles("z", vec![N]),
        ],
    }
}

/// `w[i] += α·B[i][j]·x[j]`.
fn matvec_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]), // B
                ArrayRef::new(1, vec![v(1)]),       // x[j]
                ArrayRef::new(2, vec![v(0)]),       // w[i]
            ],
            writes: vec![ArrayRef::new(2, vec![v(0)])],
            adds: 1,
            muls: 2,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("B", vec![N, N]),
            ArrayDecl::doubles("x", vec![N]),
            ArrayDecl::doubles("w", vec![N]),
        ],
    }
}

/// Builds the `gemver` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "gemver",
        vec![
            BlockSpec {
                label: "b",
                nest: rank2_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "xt",
                nest: transposed_matvec_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "xz",
                nest: vadd_nest(),
                tiled: vec![0],
                unrolled: vec![0],
                regtiled: vec![0],
            },
            BlockSpec {
                label: "w",
                nest: matvec_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn gemver_is_the_widest_space() {
        let k = build();
        // tiles (2+2+1+2)×2=14, unroll 7, regtile 7, scr 4, vec 4 → 36.
        assert_eq!(k.space().dim(), 36);
    }
}
