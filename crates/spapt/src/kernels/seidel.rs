//! Seidel: the Gauss–Seidel 2-D 9-point in-place relaxation (extended
//! suite). The in-place update gives every access the same array, producing
//! a different locality profile than Jacobi's two-array sweep.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn seidel_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    let off = |l, o| LinIndex::var_plus(nl, l, o);
    LoopNest {
        loops: vec![
            LoopDim {
                name: "i".into(),
                extent: N,
            },
            LoopDim {
                name: "j".into(),
                extent: N,
            },
        ],
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![off(0, -1), off(1, -1)]),
                ArrayRef::new(0, vec![off(0, -1), v(1)]),
                ArrayRef::new(0, vec![off(0, -1), off(1, 1)]),
                ArrayRef::new(0, vec![v(0), off(1, -1)]),
                ArrayRef::new(0, vec![v(0), v(1)]),
                ArrayRef::new(0, vec![v(0), off(1, 1)]),
                ArrayRef::new(0, vec![off(0, 1), off(1, -1)]),
                ArrayRef::new(0, vec![off(0, 1), v(1)]),
                ArrayRef::new(0, vec![off(0, 1), off(1, 1)]),
            ],
            writes: vec![ArrayRef::new(0, vec![v(0), v(1)])],
            adds: 8,
            muls: 0,
            divs: 1, // the /9.0 average
        }],
        arrays: vec![ArrayDecl::doubles("A", vec![N, N])],
    }
}

/// Builds the `seidel` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "seidel",
        vec![BlockSpec {
            label: "gs",
            nest: seidel_nest(),
            tiled: vec![0, 1],
            unrolled: vec![0, 1],
            regtiled: vec![0, 1],
        }],
    )
}
