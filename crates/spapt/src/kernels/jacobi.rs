//! Jacobi-2D: a 5-point relaxation sweep plus the copy-back block.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn loops2() -> Vec<LoopDim> {
    vec![
        LoopDim {
            name: "i".into(),
            extent: N,
        },
        LoopDim {
            name: "j".into(),
            extent: N,
        },
    ]
}

fn sweep_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    let off = |l, o| LinIndex::var_plus(nl, l, o);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]),
                ArrayRef::new(0, vec![v(0), off(1, -1)]),
                ArrayRef::new(0, vec![v(0), off(1, 1)]),
                ArrayRef::new(0, vec![off(0, 1), v(1)]),
                ArrayRef::new(0, vec![off(0, -1), v(1)]),
            ],
            writes: vec![ArrayRef::new(1, vec![v(0), v(1)])],
            adds: 4,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
        ],
    }
}

fn copy_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(),
        stmts: vec![Statement {
            reads: vec![ArrayRef::new(1, vec![v(0), v(1)])],
            writes: vec![ArrayRef::new(0, vec![v(0), v(1)])],
            adds: 0,
            muls: 0,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("B", vec![N, N]),
        ],
    }
}

/// Builds the `jacobi` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "jacobi",
        vec![
            BlockSpec {
                label: "sw",
                nest: sweep_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "cp",
                nest: copy_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn jacobi_dimensions() {
        assert_eq!(build().space().dim(), 20);
    }
}
