//! FDTD-2D: finite-difference time-domain electromagnetic kernel.
//!
//! Three stencil updates (`ey`, `ex`, `hz`) inside a short time loop. The
//! time loop is not tileable (loop-carried dependence), so only the spatial
//! loops receive transformation parameters.

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const T: u64 = 10;
const N: u64 = 1000;

fn loops3() -> Vec<LoopDim> {
    vec![
        LoopDim {
            name: "t".into(),
            extent: T,
        },
        LoopDim {
            name: "i".into(),
            extent: N,
        },
        LoopDim {
            name: "j".into(),
            extent: N,
        },
    ]
}

fn ey_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    let vm = |l| LinIndex::var_plus(nl, l, -1);
    LoopNest {
        loops: loops3(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(1), v(2)]),  // ey[i][j]
                ArrayRef::new(1, vec![v(1), v(2)]),  // hz[i][j]
                ArrayRef::new(1, vec![vm(1), v(2)]), // hz[i-1][j]
            ],
            writes: vec![ArrayRef::new(0, vec![v(1), v(2)])],
            adds: 2,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("ey", vec![N, N]),
            ArrayDecl::doubles("hz", vec![N, N]),
        ],
    }
}

fn ex_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    let vm = |l| LinIndex::var_plus(nl, l, -1);
    LoopNest {
        loops: loops3(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(1), v(2)]),  // ex[i][j]
                ArrayRef::new(1, vec![v(1), v(2)]),  // hz[i][j]
                ArrayRef::new(1, vec![v(1), vm(2)]), // hz[i][j-1]
            ],
            writes: vec![ArrayRef::new(0, vec![v(1), v(2)])],
            adds: 2,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("ex", vec![N, N]),
            ArrayDecl::doubles("hz", vec![N, N]),
        ],
    }
}

fn hz_nest() -> LoopNest {
    let nl = 3;
    let v = |l| LinIndex::var(nl, l);
    let vp = |l| LinIndex::var_plus(nl, l, 1);
    LoopNest {
        loops: loops3(),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(2, vec![v(1), v(2)]),  // hz[i][j]
                ArrayRef::new(0, vec![v(1), vp(2)]), // ex[i][j+1]
                ArrayRef::new(0, vec![v(1), v(2)]),  // ex[i][j]
                ArrayRef::new(1, vec![vp(1), v(2)]), // ey[i+1][j]
                ArrayRef::new(1, vec![v(1), v(2)]),  // ey[i][j]
            ],
            writes: vec![ArrayRef::new(2, vec![v(1), v(2)])],
            adds: 4,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("ex", vec![N, N]),
            ArrayDecl::doubles("ey", vec![N, N]),
            ArrayDecl::doubles("hz", vec![N, N]),
        ],
    }
}

/// Builds the `fdtd` kernel.
#[must_use]
pub fn build() -> Kernel {
    let block = |label: &'static str, nest: LoopNest| BlockSpec {
        label,
        nest,
        tiled: vec![1, 2],
        unrolled: vec![1, 2],
        regtiled: vec![2],
    };
    Kernel::new(
        "fdtd",
        vec![
            block("ey", ey_nest()),
            block("ex", ex_nest()),
            block("hz", hz_nest()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;

    #[test]
    fn fdtd_dimensions_and_time() {
        let k = build();
        // tiles 3 blocks × 2 loops × 2 = 12, unroll 6, regtile 3, scr 3, vec 3 → 27.
        assert_eq!(k.space().dim(), 27);
        let cfg = pwu_space::Configuration::new(vec![0; 27]);
        let t = k.ideal_time(&cfg);
        assert!(t > 0.0 && t < 10.0, "fdtd time {t}");
    }
}
