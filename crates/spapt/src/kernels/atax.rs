//! ATAX: `y = Aᵀ(Ax)` — two dependent matrix-vector products.
//!
//! Block `t`: `tmp[i] += A[i][j]·x[j]` (row-major friendly).
//! Block `y`: `y[j] += A[i][j]·tmp[i]` (the transpose product; the write is
//! unit-stride in the *inner* loop, giving the two blocks different optimal
//! transformations — the interaction PWU must learn).

use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
use crate::kernels::{BlockSpec, Kernel};

const N: u64 = 4000;

fn loops2(n0: u64, n1: u64) -> Vec<LoopDim> {
    vec![
        LoopDim {
            name: "i".into(),
            extent: n0,
        },
        LoopDim {
            name: "j".into(),
            extent: n1,
        },
    ]
}

fn ax_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(N, N),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]), // A[i][j]
                ArrayRef::new(1, vec![v(1)]),       // x[j]
                ArrayRef::new(2, vec![v(0)]),       // tmp[i]
            ],
            writes: vec![ArrayRef::new(2, vec![v(0)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("x", vec![N]),
            ArrayDecl::doubles("tmp", vec![N]),
        ],
    }
}

fn atx_nest() -> LoopNest {
    let nl = 2;
    let v = |l| LinIndex::var(nl, l);
    LoopNest {
        loops: loops2(N, N),
        stmts: vec![Statement {
            reads: vec![
                ArrayRef::new(0, vec![v(0), v(1)]), // A[i][j]
                ArrayRef::new(1, vec![v(0)]),       // tmp[i]
                ArrayRef::new(2, vec![v(1)]),       // y[j]
            ],
            writes: vec![ArrayRef::new(2, vec![v(1)])],
            adds: 1,
            muls: 1,
            divs: 0,
        }],
        arrays: vec![
            ArrayDecl::doubles("A", vec![N, N]),
            ArrayDecl::doubles("tmp", vec![N]),
            ArrayDecl::doubles("y", vec![N]),
        ],
    }
}

/// Builds the `atax` kernel.
#[must_use]
pub fn build() -> Kernel {
    Kernel::new(
        "atax",
        vec![
            BlockSpec {
                label: "t",
                nest: ax_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
            BlockSpec {
                label: "y",
                nest: atx_nest(),
                tiled: vec![0, 1],
                unrolled: vec![0, 1],
                regtiled: vec![0, 1],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::TuningTarget;
    use pwu_stats::Xoshiro256PlusPlus;

    #[test]
    fn atax_surface_has_spread() {
        let k = build();
        let mut rng = Xoshiro256PlusPlus::new(5);
        let cfgs = k.space().sample_distinct(64, &mut rng);
        let times: Vec<f64> = cfgs.iter().map(|c| k.ideal_time(c)).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.5, "spread {min}..{max}");
    }
}
