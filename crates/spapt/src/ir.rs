//! Loop-nest intermediate representation.
//!
//! Kernels are perfect rectangular loop nests over statements with affine
//! array accesses — exactly the program class Orio's tiling/unrolling
//! annotations target. The IR captures what the cost model needs: loop
//! extents, per-statement flop counts, and the affine index expressions that
//! determine locality.

/// An affine index expression `Σ coeffs[ℓ]·iter_ℓ + offset` over the loops
/// of the enclosing nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinIndex {
    /// One coefficient per loop of the nest (outermost first).
    pub coeffs: Vec<i64>,
    /// Constant offset.
    pub offset: i64,
}

impl LinIndex {
    /// Builds an index that is just one loop variable: `iter_loop`.
    #[must_use]
    pub fn var(n_loops: usize, loop_idx: usize) -> Self {
        let mut coeffs = vec![0; n_loops];
        coeffs[loop_idx] = 1;
        Self { coeffs, offset: 0 }
    }

    /// Builds `iter_loop + offset`.
    #[must_use]
    pub fn var_plus(n_loops: usize, loop_idx: usize, offset: i64) -> Self {
        let mut idx = Self::var(n_loops, loop_idx);
        idx.offset = offset;
        idx
    }

    /// Builds a constant index.
    #[must_use]
    pub fn constant(n_loops: usize, offset: i64) -> Self {
        Self {
            coeffs: vec![0; n_loops],
            offset,
        }
    }

    /// True when the expression does not depend on `loop_idx`.
    #[must_use]
    pub fn invariant_in(&self, loop_idx: usize) -> bool {
        self.coeffs[loop_idx] == 0
    }
}

/// A declared array with its dimensions (row-major) and element size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Extent of each dimension, outermost first.
    pub dims: Vec<u64>,
    /// Bytes per element (8 for `double`).
    pub elem_bytes: u64,
}

impl ArrayDecl {
    /// Creates a `double` array.
    #[must_use]
    pub fn doubles(name: impl Into<String>, dims: Vec<u64>) -> Self {
        Self {
            name: name.into(),
            dims,
            elem_bytes: 8,
        }
    }

    /// Total size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.dims.iter().product::<u64>() * self.elem_bytes
    }
}

/// A read or write access to an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Index into [`LoopNest::arrays`].
    pub array: usize,
    /// One affine expression per array dimension.
    pub index: Vec<LinIndex>,
}

impl ArrayRef {
    /// Creates a reference.
    #[must_use]
    pub fn new(array: usize, index: Vec<LinIndex>) -> Self {
        Self { array, index }
    }

    /// True when the access is invariant in the given loop.
    #[must_use]
    pub fn invariant_in(&self, loop_idx: usize) -> bool {
        self.index.iter().all(|e| e.invariant_in(loop_idx))
    }

    /// Coefficient of `loop_idx` in the *last* (fastest-varying) dimension.
    ///
    /// A value of ±1 with zero coefficients in all other dimensions means the
    /// loop walks the array contiguously (unit stride).
    #[must_use]
    pub fn innermost_coeff(&self, loop_idx: usize) -> i64 {
        self.index.last().map_or(0, |e| e.coeffs[loop_idx])
    }

    /// True when iterating `loop_idx` moves through the array with unit
    /// stride (coefficient 1 in the last dimension, 0 elsewhere).
    #[must_use]
    pub fn unit_stride_in(&self, loop_idx: usize) -> bool {
        if self.index.is_empty() {
            return false;
        }
        let last = self.index.len() - 1;
        self.index.iter().enumerate().all(|(d, e)| {
            if d == last {
                e.coeffs[loop_idx].abs() == 1
            } else {
                e.coeffs[loop_idx] == 0
            }
        })
    }
}

/// One statement of the nest body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Array reads.
    pub reads: Vec<ArrayRef>,
    /// Array writes.
    pub writes: Vec<ArrayRef>,
    /// Floating additions/subtractions per execution.
    pub adds: u32,
    /// Floating multiplications per execution.
    pub muls: u32,
    /// Floating divisions per execution (expensive; ADI is division-heavy).
    pub divs: u32,
}

/// One loop of the nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Loop variable name.
    pub name: String,
    /// Trip count.
    pub extent: u64,
}

/// A perfect rectangular loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Loops, outermost first.
    pub loops: Vec<LoopDim>,
    /// Statements executed in the innermost body.
    pub stmts: Vec<Statement>,
    /// Arrays referenced by the statements.
    pub arrays: Vec<ArrayDecl>,
}

impl LoopNest {
    /// Total number of innermost iterations.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.loops.iter().map(|l| l.extent).product()
    }

    /// Number of loops.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Validates internal consistency (coefficient widths, array ids,
    /// dimension counts).
    ///
    /// # Panics
    /// Panics with a description of the first inconsistency.
    pub fn validate(&self) {
        let n = self.loops.len();
        assert!(n > 0, "nest has no loops");
        assert!(!self.stmts.is_empty(), "nest has no statements");
        for stmt in &self.stmts {
            for r in stmt.reads.iter().chain(&stmt.writes) {
                assert!(
                    r.array < self.arrays.len(),
                    "reference to undeclared array {}",
                    r.array
                );
                let decl = &self.arrays[r.array];
                assert_eq!(
                    r.index.len(),
                    decl.dims.len(),
                    "array {} indexed with wrong dimensionality",
                    decl.name
                );
                for e in &r.index {
                    assert_eq!(
                        e.coeffs.len(),
                        n,
                        "index expression has {} coefficients for {} loops",
                        e.coeffs.len(),
                        n
                    );
                }
            }
        }
    }

    /// Total flops executed by the whole nest.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        let per_iter: u64 = self
            .stmts
            .iter()
            .map(|s| u64::from(s.adds + s.muls + s.divs))
            .sum();
        per_iter as f64 * self.iterations() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the 2-D `C[i][j] += A[i][k] * B[k][j]` nest (i, j, k).
    fn mm_nest(n: u64) -> LoopNest {
        let nl = 3;
        LoopNest {
            loops: vec![
                LoopDim {
                    name: "i".into(),
                    extent: n,
                },
                LoopDim {
                    name: "j".into(),
                    extent: n,
                },
                LoopDim {
                    name: "k".into(),
                    extent: n,
                },
            ],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 2)]),
                    ArrayRef::new(1, vec![LinIndex::var(nl, 2), LinIndex::var(nl, 1)]),
                    ArrayRef::new(2, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)]),
                ],
                writes: vec![ArrayRef::new(
                    2,
                    vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)],
                )],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![n, n]),
                ArrayDecl::doubles("B", vec![n, n]),
                ArrayDecl::doubles("C", vec![n, n]),
            ],
        }
    }

    #[test]
    fn mm_nest_validates_and_counts() {
        let nest = mm_nest(64);
        nest.validate();
        assert_eq!(nest.iterations(), 64 * 64 * 64);
        assert_eq!(nest.total_flops(), 2.0 * 64.0 * 64.0 * 64.0);
        assert_eq!(nest.depth(), 3);
    }

    #[test]
    fn stride_analysis() {
        let nest = mm_nest(8);
        let a_ref = &nest.stmts[0].reads[0]; // A[i][k]
        let b_ref = &nest.stmts[0].reads[1]; // B[k][j]
                                             // A[i][k]: unit stride in k (last dim coeff 1), invariant in j.
        assert!(a_ref.unit_stride_in(2));
        assert!(a_ref.invariant_in(1));
        assert!(!a_ref.unit_stride_in(0));
        // B[k][j]: unit stride in j, strided in k.
        assert!(b_ref.unit_stride_in(1));
        assert!(!b_ref.unit_stride_in(2));
        assert_eq!(b_ref.innermost_coeff(1), 1);
    }

    #[test]
    fn stencil_offsets() {
        // X[i][j-1] style access.
        let idx = LinIndex::var_plus(2, 1, -1);
        assert_eq!(idx.offset, -1);
        assert!(!idx.invariant_in(1));
        assert!(idx.invariant_in(0));
        let c = LinIndex::constant(2, 5);
        assert!(c.invariant_in(0) && c.invariant_in(1));
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn validate_catches_bad_dimensionality() {
        let mut nest = mm_nest(4);
        nest.stmts[0].reads[0].index.pop();
        nest.validate();
    }
}
