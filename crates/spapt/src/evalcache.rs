//! Memoized kernel evaluation: the measurement engine's base-cost cache.
//!
//! The paper's protocol measures each configuration 35 times; historically
//! each repetition re-ran the whole model evaluation — decode the
//! configuration, apply the transformations, analyze cache traffic, price
//! the cycles — even though that *base cost* is a pure function of
//! `(kernel, configuration)` and only the noise/fault draw differs between
//! repetitions. [`EvalCache`] memoizes everything the measurement path
//! derives from the encoded levels that does not touch the RNG, so 35
//! repetitions cost one model evaluation plus 35 noise draws.
//!
//! Why memoization is bit-exact: [`crate::cost::estimate_time`] consumes no
//! RNG and depends only on the configuration's levels and the kernel's
//! immutable structure (blocks, machine, legality masks), so replaying its
//! `f64` from a hash map returns the *identical* bits the recomputation
//! would have produced, and the measurement RNG stream — which only feeds
//! the noise/fault layer — advances exactly as before. The same argument
//! covers the cached legality verdict and aggressiveness flag (pure
//! functions of the decode). Kernel builders that change the surface
//! ([`crate::Kernel::with_machine`], [`crate::Kernel::with_legality`])
//! discard the cache.
//!
//! Entries are two-stage: the legality/aggressiveness half is computed by
//! the cheap decode+clamp pass (pool linting classifies thousands of
//! configurations that are never measured, and must not pay for the cost
//! model), while the base cost is filled in lazily on the first
//! `ideal_time`. Concurrent fills are benign — every thread computes the
//! same pure values, so whichever insert wins stores the same bits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

use pwu_space::{ConfigLegality, Configuration, MeasureOutcome, ParamSpace, TuningTarget};
use pwu_stats::Xoshiro256PlusPlus;

use crate::kernels::Kernel;

/// One memoized evaluation of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedEval {
    /// Legality verdict of the clamped decode.
    pub legality: ConfigLegality,
    /// Whether the *raw* decode requests an aggressive transformation
    /// (deep unroll-jam), before legality clamping.
    pub aggressive: bool,
    /// Clamped noise-free execution time in seconds; `None` until the first
    /// `ideal_time` on this configuration pays for the cost model.
    pub ideal_time: Option<f64>,
}

/// Upper bound on cached configurations; past it new entries are computed
/// but not stored. SPAPT spaces have 10¹⁰⁺ points but a tuning campaign
/// touches at most tens of thousands, so the cap exists only to bound
/// memory if a caller streams the space.
const MAX_ENTRIES: usize = 1 << 20;

/// Hash-map memo keyed by encoded configuration levels.
///
/// Interior-mutable (`RwLock`) so it can live behind the `&self` methods of
/// [`TuningTarget`]; `Clone` produces a *cold* cache — the memo is an
/// optimization, never state, so clones are free to re-derive it.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: RwLock<HashMap<Vec<u32>, CachedEval>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Approximate heap bytes held by the memo, maintained as a counter on
    /// insert/clear so memory governors (the `pwu-serve` cache LRU) can read
    /// it without iterating the map.
    approx_bytes: AtomicUsize,
}

/// Estimated heap bytes one cache entry costs: the boxed key levels plus
/// the hash-map slot (key header + value + bucket overhead). A bookkeeping
/// estimate for admission decisions, not an allocator measurement.
const fn entry_bytes(n_levels: usize) -> usize {
    n_levels * std::mem::size_of::<u32>()
        + std::mem::size_of::<Vec<u32>>()
        + std::mem::size_of::<CachedEval>()
        + 16
}

impl Clone for EvalCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// Cached handles for the registry mirrors of the hit/miss tallies
/// (`(hits, misses)`), shared by every cache in the process.
fn evalcache_counters() -> &'static (pwu_obs::Counter, pwu_obs::Counter) {
    static COUNTERS: std::sync::OnceLock<(pwu_obs::Counter, pwu_obs::Counter)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            pwu_obs::counter_diag("evalcache.hits"),
            pwu_obs::counter_diag("evalcache.misses"),
        )
    })
}

impl EvalCache {
    /// A fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached entry for `levels`, if any.
    fn lookup(&self, levels: &[u32]) -> Option<CachedEval> {
        let guard = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = guard.get(levels).copied();
        // The global mirrors are *diagnostic*-plane: hit/miss increments
        // depend on scheduling (parallel repetitions share one kernel's
        // cache, so whether the second arrival hits depends on who filled
        // first), so they are excluded from the deterministic trace export.
        let mirrors = evalcache_counters();
        match entry {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                mirrors.0.incr();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                mirrors.1.incr();
            }
        }
        entry
    }

    /// Stores (or upgrades) the entry for `levels`, respecting the size cap.
    fn store(&self, levels: &[u32], entry: CachedEval) {
        let mut guard = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.len() >= MAX_ENTRIES && !guard.contains_key(levels) {
            return;
        }
        if guard.insert(levels.to_vec(), entry).is_none() {
            self.approx_bytes
                .fetch_add(entry_bytes(levels.len()), Ordering::Relaxed);
        }
    }

    /// Number of memoized configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction (monitoring/tests).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Approximate heap bytes held by the memo (see [`EvalCache::store`]'s
    /// per-entry estimate). O(1) — read from a counter, not by iteration.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes.load(Ordering::Relaxed)
    }

    /// Drops every entry (builders call this when the surface changes; the
    /// serve-layer cache LRU calls it to evict a cold session's memo).
    pub fn clear(&self) {
        let mut guard = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.clear();
        self.approx_bytes.store(0, Ordering::Relaxed);
    }

    /// The decode-derived half of the entry for `cfg`, memoized.
    ///
    /// `decode` runs at most once per distinct configuration (per fill
    /// race); it must return `ideal_time: None` — the cost-model half is
    /// owned by [`EvalCache::ideal_time`].
    pub(crate) fn decoded(
        &self,
        cfg: &Configuration,
        decode: impl FnOnce() -> CachedEval,
    ) -> CachedEval {
        if let Some(entry) = self.lookup(cfg.levels()) {
            return entry;
        }
        let entry = decode();
        self.store(cfg.levels(), entry);
        entry
    }

    /// The memoized base cost for `cfg`, computing (and storing) it on the
    /// first call via `compute`, which returns a fully-evaluated entry.
    pub(crate) fn ideal_time(
        &self,
        cfg: &Configuration,
        compute: impl FnOnce() -> CachedEval,
    ) -> f64 {
        if let Some(CachedEval {
            ideal_time: Some(t),
            ..
        }) = self.lookup(cfg.levels())
        {
            return t;
        }
        let entry = compute();
        let t = entry
            .ideal_time
            .expect("compute must produce the base cost");
        self.store(cfg.levels(), entry);
        t
    }
}

/// A [`Kernel`] stripped of its memo: every call re-derives the base cost
/// from scratch, exactly as the pre-cache implementation did.
///
/// This is the *reference* measurement path. The bit-identity property suite
/// drives a kernel and its `Uncached` twin through identical annotation
/// schedules and demands equal bits and equal RNG stream positions; the perf
/// harness times the two against each other to report the memoization
/// speedup honestly on the current machine.
#[derive(Debug, Clone)]
pub struct Uncached(pub Kernel);

impl TuningTarget for Uncached {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn space(&self) -> &ParamSpace {
        self.0.space()
    }

    fn ideal_time(&self, cfg: &Configuration) -> f64 {
        self.0.ideal_time_uncached(cfg)
    }

    fn lint_config(&self, cfg: &Configuration) -> ConfigLegality {
        self.0.decode_legal(cfg).1
    }

    fn measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.0
            .noise()
            .perturb(self.0.ideal_time_uncached(cfg), rng)
    }

    fn try_measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> MeasureOutcome {
        let Some(fm) = self.0.faults().filter(|fm| fm.is_enabled()) else {
            return MeasureOutcome::Ok(self.measure(cfg, rng));
        };
        if fm.compile_fails(cfg, self.0.is_aggressive_uncached(cfg)) {
            return MeasureOutcome::Failed {
                kind: pwu_space::FailureKind::Compile,
                cost: fm.compile_cost,
            };
        }
        fm.measure_transient(self.0.ideal_time_uncached(cfg), rng, |ideal, rng| {
            self.0.noise().perturb(ideal, rng)
        })
    }

    fn measure_averaged(
        &self,
        cfg: &Configuration,
        repeats: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> f64 {
        // Deliberately re-derives the base cost on every repetition — the
        // historical per-repeat recompute the cache exists to eliminate.
        assert!(repeats > 0, "need at least one repeat");
        (0..repeats)
            .map(|_| {
                self.0
                    .noise()
                    .perturb(self.0.ideal_time_uncached(cfg), rng)
            })
            .sum::<f64>()
            / repeats as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_bytes_tracks_inserts_and_clear() {
        let cache = EvalCache::new();
        assert_eq!(cache.approx_bytes(), 0);
        let entry = CachedEval {
            legality: ConfigLegality::Legal,
            aggressive: false,
            ideal_time: None,
        };
        cache.store(&[1, 2, 3], entry);
        let one = cache.approx_bytes();
        assert_eq!(one, entry_bytes(3));
        // Upgrading an existing key does not double-count.
        cache.store(
            &[1, 2, 3],
            CachedEval {
                ideal_time: Some(1.0),
                ..entry
            },
        );
        assert_eq!(cache.approx_bytes(), one);
        cache.store(&[4, 5, 6], entry);
        assert_eq!(cache.approx_bytes(), 2 * one);
        // Clones are cold; clear resets the counter with the map.
        assert_eq!(cache.clone().approx_bytes(), 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.approx_bytes(), 0);
    }
}
