//! Analytical multi-level cache-miss model.
//!
//! Classic capacity/footprint reasoning, the same family of models used by
//! ATLAS-style tile selectors: for each cache level, find the largest
//! subnest of the (tiled) loop nest whose combined data footprint fits in the
//! cache; every execution of that subnest then touches its lines exactly
//! once, so
//!
//! ```text
//! misses(level) = executions(subnest) × lines-touched-per-execution
//! ```
//!
//! Footprints come from the affine index expressions: the span of every array
//! dimension under the loop ranges active inside the subnest.

use crate::ir::{ArrayRef, LoopNest};
use crate::machine::MachineModel;
use crate::transform::TransformedNest;

/// Per-level miss traffic, split by access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LevelMisses {
    /// Line fetches with contiguous (prefetchable, bandwidth-bound) pattern.
    pub streaming: f64,
    /// Line fetches with strided/scattered (latency-bound) pattern.
    pub latency_bound: f64,
}

impl LevelMisses {
    /// Total line fetches at this level.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.streaming + self.latency_bound
    }
}

/// Cache traffic of one transformed nest.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Total L1 data accesses (loads + stores) over the whole nest.
    pub l1_accesses: f64,
    /// Per cache level, the lines fetched *into* that level.
    pub level_misses: Vec<LevelMisses>,
}

/// Analyzes the cache traffic of `t` (a transformation of `nest`) on
/// `machine`.
#[must_use]
pub fn analyze(nest: &LoopNest, t: &TransformedNest, machine: &MachineModel) -> TrafficReport {
    let n_orig = nest.depth();
    let n_loops = t.loops.len();
    let iters = t.iterations();

    // L1 accesses: every read/write per iteration, minus scalar-replaced
    // loads.
    let reads_per_iter: usize = nest.stmts.iter().map(|s| s.reads.len()).sum();
    let writes_per_iter: usize = nest.stmts.iter().map(|s| s.writes.len()).sum();
    let replaced = t.scalar_replaced_read_fraction(nest) * reads_per_iter as f64;
    let l1_accesses = iters * (reads_per_iter as f64 - replaced + writes_per_iter as f64);

    // For each level: deepest boundary depth whose subnest footprint fits.
    let mut level_misses = Vec::with_capacity(machine.caches.len());
    let mut prev_total = f64::INFINITY; // enforce monotone misses
    for level in &machine.caches {
        let mut chosen_depth = n_loops; // empty subnest always "fits"
        for depth in (0..=n_loops).rev() {
            let ranges = t.inner_ranges(depth, n_orig);
            let bytes = total_footprint_bytes(nest, &ranges, level.line);
            if bytes <= level.capacity as f64 * effective_capacity_fraction(level.ways) {
                chosen_depth = depth;
            } else {
                break; // footprints grow monotonically as depth decreases
            }
        }
        let mut misses = LevelMisses::default();
        let capacity = level.capacity as f64 * effective_capacity_fraction(level.ways);
        for array in unique_arrays(nest) {
            let (fetched, contiguous) =
                array_misses(nest, t, array, chosen_depth, n_orig, level.line, capacity);
            if contiguous {
                misses.streaming += fetched;
            } else {
                misses.latency_bound += fetched;
            }
        }
        // A lower level cannot see more traffic than the level above it.
        let total = misses.total();
        if total > prev_total && total > 0.0 {
            let scale = prev_total / total;
            misses.streaming *= scale;
            misses.latency_bound *= scale;
        }
        prev_total = misses.total();
        level_misses.push(misses);
    }

    TrafficReport {
        l1_accesses,
        level_misses,
    }
}

/// Fraction of nominal capacity usable before conflict misses dominate;
/// low-associativity caches hold less of a multi-array working set.
fn effective_capacity_fraction(ways: u32) -> f64 {
    match ways {
        0..=1 => 0.4,
        2..=4 => 0.6,
        5..=8 => 0.75,
        _ => 0.85,
    }
}

fn unique_arrays(nest: &LoopNest) -> impl Iterator<Item = usize> + '_ {
    (0..nest.arrays.len()).filter(|&a| {
        nest.stmts
            .iter()
            .any(|s| s.reads.iter().chain(&s.writes).any(|r| r.array == a))
    })
}

/// Footprint of all arrays, in bytes, rounded up to whole lines per array.
fn total_footprint_bytes(nest: &LoopNest, ranges: &[u64], line: u64) -> f64 {
    unique_arrays(nest)
        .map(|a| {
            let (lines, _) = array_lines(nest, a, ranges, line);
            lines * line as f64
        })
        .sum()
}

/// Total line fetches of one array at a given cache level, accounting for
/// reuse *across* executions of the capacity-fitting subnest.
///
/// Starting from the deepest subnest whose total footprint fits
/// (`chosen_depth`), the boundary is extended upward per array through loops
/// that
///
/// - do not touch the array at all (pure reuse — the resident lines are hit
///   again, e.g. `A[i][k]` across the `j` loop of MM), provided the array's
///   own footprint fits in the cache, or
/// - advance only the last dimension with unit stride (successive
///   executions share cache lines — e.g. `B[k][j]` across `j`, or a 1-D
///   stream across its own loop).
///
/// Misses are then `executions(extended depth) × lines(extended ranges)`.
fn array_misses(
    nest: &LoopNest,
    t: &TransformedNest,
    array: usize,
    chosen_depth: usize,
    n_orig: usize,
    line: u64,
    capacity: f64,
) -> (f64, bool) {
    let mut depth = chosen_depth;
    let mut extended_contig = false;
    while depth > 0 {
        let outer = t.loops[depth - 1];
        let refs_touch = nest.stmts.iter().any(|s| {
            s.reads
                .iter()
                .chain(&s.writes)
                .any(|r| r.array == array && !r.invariant_in(outer.orig))
        });
        if !refs_touch {
            // Invariant loop: reuse is free only if this array's resident
            // footprint survives the other arrays' traffic.
            let ranges = t.inner_ranges(depth, n_orig);
            let (lines, _) = array_lines(nest, array, &ranges, line);
            if lines * line as f64 <= capacity {
                depth -= 1;
                continue;
            }
            break;
        }
        // Does this loop advance only the last dimension, unit-stride?
        let unit_last = nest.stmts.iter().all(|s| {
            s.reads
                .iter()
                .chain(&s.writes)
                .filter(|r| r.array == array)
                .all(|r| {
                    let last = r.index.len() - 1;
                    r.index.iter().enumerate().all(|(d, e)| {
                        if d == last {
                            e.coeffs[outer.orig].abs() <= 1
                        } else {
                            e.coeffs[outer.orig] == 0
                        }
                    })
                })
        });
        if unit_last {
            extended_contig = true;
            depth -= 1;
            continue;
        }
        break;
    }
    let ranges = t.inner_ranges(depth, n_orig);
    let (lines, contiguous) = array_lines(nest, array, &ranges, line);
    (lines * t.executions(depth), contiguous || extended_contig)
}

/// Distinct cache lines of `array` touched under the given per-loop ranges,
/// plus whether the access pattern is contiguous in memory.
///
/// The span of each array dimension is the value range of its affine index
/// across all references and all loop positions inside the ranges.
fn array_lines(nest: &LoopNest, array: usize, ranges: &[u64], line: u64) -> (f64, bool) {
    let decl = &nest.arrays[array];
    let refs: Vec<&ArrayRef> = nest
        .stmts
        .iter()
        .flat_map(|s| s.reads.iter().chain(&s.writes))
        .filter(|r| r.array == array)
        .collect();
    if refs.is_empty() {
        return (0.0, true);
    }
    let n_dims = decl.dims.len();
    let mut spans = Vec::with_capacity(n_dims);
    for d in 0..n_dims {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for r in &refs {
            let e = &r.index[d];
            let mut min_v = e.offset;
            let mut max_v = e.offset;
            for (l, &c) in e.coeffs.iter().enumerate() {
                let reach = c.saturating_mul(ranges[l] as i64 - 1);
                if c >= 0 {
                    max_v = max_v.saturating_add(reach);
                } else {
                    min_v = min_v.saturating_add(reach);
                }
            }
            lo = lo.min(min_v);
            hi = hi.max(max_v);
        }
        let span = (hi - lo + 1).max(1) as u64;
        spans.push(span.min(decl.dims[d]));
    }

    // Contiguity: the fastest-varying dimension must be walked densely by
    // some loop with range > 1 (unit-stride coefficient).
    let last = n_dims - 1;
    let contiguous = refs.iter().any(|r| {
        r.index[last]
            .coeffs
            .iter()
            .enumerate()
            .any(|(l, &c)| c.abs() == 1 && ranges[l] > 1)
    }) || spans[last] * decl.elem_bytes >= line;

    let last_span_bytes = spans[last] * decl.elem_bytes;
    let outer: f64 = spans[..last].iter().map(|&s| s as f64).product();
    let lines = if contiguous {
        outer * (last_span_bytes as f64 / line as f64).ceil()
    } else {
        // Sparse in the last dimension: every element risks its own line.
        outer * spans[last] as f64
    };
    (lines.max(1.0), contiguous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
    use crate::transform::{apply, BlockTransform};

    /// Simple 1-D streaming kernel: y[i] = a[i] + b[i].
    fn stream_nest(n: u64) -> LoopNest {
        LoopNest {
            loops: vec![LoopDim {
                name: "i".into(),
                extent: n,
            }],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(1, 0)]),
                    ArrayRef::new(1, vec![LinIndex::var(1, 0)]),
                ],
                writes: vec![ArrayRef::new(2, vec![LinIndex::var(1, 0)])],
                adds: 1,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("a", vec![n]),
                ArrayDecl::doubles("b", vec![n]),
                ArrayDecl::doubles("y", vec![n]),
            ],
        }
    }

    fn mm_nest(n: u64) -> LoopNest {
        let nl = 3;
        LoopNest {
            loops: vec![
                LoopDim {
                    name: "i".into(),
                    extent: n,
                },
                LoopDim {
                    name: "j".into(),
                    extent: n,
                },
                LoopDim {
                    name: "k".into(),
                    extent: n,
                },
            ],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 2)]),
                    ArrayRef::new(1, vec![LinIndex::var(nl, 2), LinIndex::var(nl, 1)]),
                    ArrayRef::new(2, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)]),
                ],
                writes: vec![ArrayRef::new(
                    2,
                    vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)],
                )],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![n, n]),
                ArrayDecl::doubles("B", vec![n, n]),
                ArrayDecl::doubles("C", vec![n, n]),
            ],
        }
    }

    #[test]
    fn streaming_kernel_misses_match_compulsory_lines() {
        let n = 1 << 20; // 8 MB per array: exceeds L1/L2, fits nothing twice
        let nest = stream_nest(n);
        let t = apply(&nest, &BlockTransform::identity(1));
        let m = MachineModel::platform_a();
        let report = analyze(&nest, &t, &m);
        assert_eq!(report.l1_accesses, 3.0 * n as f64);
        // Compulsory misses: 3 arrays × n/8 lines, at every level.
        let expected = 3.0 * n as f64 / 8.0;
        for lvl in &report.level_misses {
            assert!(lvl.latency_bound == 0.0, "stream must be contiguous");
            assert!(
                (lvl.streaming - expected).abs() / expected < 0.01,
                "misses {} vs {}",
                lvl.streaming,
                expected
            );
        }
    }

    #[test]
    fn tiny_working_set_stays_in_l1() {
        let nest = stream_nest(64); // 512 B per array
        let t = apply(&nest, &BlockTransform::identity(1));
        let report = analyze(&nest, &t, &MachineModel::platform_a());
        // One cold sweep: 8 lines per array.
        assert!(report.level_misses[0].total() <= 3.0 * 8.0 + 1.0);
    }

    #[test]
    fn tiling_reduces_mm_misses() {
        let n = 512; // 3 arrays × 2 MB
        let nest = mm_nest(n);
        let m = MachineModel::platform_a();
        let untiled = apply(&nest, &BlockTransform::identity(3));
        let mut p = BlockTransform::identity(3);
        p.tiles = vec![(1, 64), (1, 64), (1, 64)]; // classic L1/L2 blocking
        let tiled = apply(&nest, &p);
        let misses_untiled: f64 = analyze(&nest, &untiled, &m)
            .level_misses
            .iter()
            .map(LevelMisses::total)
            .sum();
        let misses_tiled: f64 = analyze(&nest, &tiled, &m)
            .level_misses
            .iter()
            .map(LevelMisses::total)
            .sum();
        assert!(
            misses_tiled < misses_untiled / 2.0,
            "tiling should cut misses strongly: {misses_tiled} vs {misses_untiled}"
        );
    }

    #[test]
    fn misses_are_monotone_down_the_hierarchy() {
        let nest = mm_nest(256);
        let m = MachineModel::platform_a();
        for tiles in [
            vec![(1u64, 1u64), (1, 1), (1, 1)],
            vec![(128, 16), (128, 16), (1, 1)],
            vec![(1, 8), (1, 8), (1, 8)],
        ] {
            let mut p = BlockTransform::identity(3);
            p.tiles = tiles;
            let t = apply(&nest, &p);
            let r = analyze(&nest, &t, &m);
            for w in r.level_misses.windows(2) {
                assert!(
                    w[1].total() <= w[0].total() + 1e-6,
                    "level misses must not grow downward: {:?}",
                    r.level_misses
                );
            }
            // L1 misses cannot exceed accesses.
            assert!(r.level_misses[0].total() <= r.l1_accesses);
        }
    }

    #[test]
    fn scalar_replacement_reduces_l1_accesses() {
        let nest = mm_nest(128);
        let mut p = BlockTransform::identity(3);
        p.scalar_replace = true;
        let on = apply(&nest, &p);
        let off = apply(&nest, &BlockTransform::identity(3));
        let m = MachineModel::platform_a();
        assert!(analyze(&nest, &on, &m).l1_accesses < analyze(&nest, &off, &m).l1_accesses);
    }
}
