//! Wall-clock measurement-noise model.
//!
//! The paper measures kernels 35 times and averages to suppress system
//! noise. The model here reproduces that setting: a noise-free "ideal" time
//! is perturbed multiplicatively by lognormal jitter (OS noise can only add
//! time, so the distribution is right-skewed), plus rare large outliers
//! (daemon wakeups, page-cache misses).

use pwu_stats::dist::sample_exponential;
use pwu_stats::{LogNormal, Xoshiro256PlusPlus};

/// Multiplicative measurement-noise model.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Log-scale standard deviation of the jitter (0.03 ≈ 3 % CV).
    pub sigma: f64,
    /// Probability of an outlier spike per measurement.
    pub outlier_prob: f64,
    /// Mean relative magnitude of an outlier spike (e.g. 0.5 → +50 %).
    pub outlier_scale: f64,
}

impl NoiseModel {
    /// The kernel-platform default: quiesced node, ~2 % jitter, rare spikes.
    #[must_use]
    pub fn quiet() -> Self {
        Self {
            sigma: 0.02,
            outlier_prob: 0.01,
            outlier_scale: 0.3,
        }
    }

    /// The cluster default: network jitter raises dispersion.
    #[must_use]
    pub fn cluster() -> Self {
        Self {
            sigma: 0.05,
            outlier_prob: 0.03,
            outlier_scale: 0.5,
        }
    }

    /// A noise-free model (for deterministic tests).
    #[must_use]
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            outlier_prob: 0.0,
            outlier_scale: 0.0,
        }
    }

    /// Perturbs one ideal time into a single noisy measurement.
    ///
    /// The jitter distribution is normalized to mean 1 so repeated
    /// measurement averages converge to `ideal`.
    #[must_use]
    pub fn perturb(&self, ideal: f64, rng: &mut Xoshiro256PlusPlus) -> f64 {
        debug_assert!(ideal > 0.0, "ideal time must be positive");
        let mut factor = if self.sigma > 0.0 {
            // mean of LogNormal(mu, sigma) is exp(mu + sigma²/2); shifting
            // mu by −sigma²/2 normalizes the mean to 1.
            let mut d = LogNormal::new(-0.5 * self.sigma * self.sigma, self.sigma);
            d.sample(rng)
        } else {
            1.0
        };
        if self.outlier_prob > 0.0 && rng.next_f64() < self.outlier_prob {
            factor += self.outlier_scale * sample_exponential(rng, 1.0);
        }
        ideal * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_stats::mean;

    #[test]
    fn noise_free_model_is_identity() {
        let m = NoiseModel::none();
        let mut rng = Xoshiro256PlusPlus::new(0);
        assert_eq!(m.perturb(0.5, &mut rng), 0.5);
    }

    #[test]
    fn average_converges_to_ideal() {
        let m = NoiseModel::quiet();
        let mut rng = Xoshiro256PlusPlus::new(1);
        let xs: Vec<f64> = (0..100_000).map(|_| m.perturb(1.0, &mut rng)).collect();
        let avg = mean(&xs);
        // Outliers bias upward by outlier_prob × outlier_scale ≈ 0.3 %.
        assert!((avg - 1.0).abs() < 0.02, "mean {avg}");
    }

    #[test]
    fn outlier_path_produces_right_tail_spikes() {
        // Isolate the outlier branch: no lognormal jitter, guaranteed spike.
        let always = NoiseModel {
            sigma: 0.0,
            outlier_prob: 1.0,
            outlier_scale: 0.5,
        };
        let mut rng = Xoshiro256PlusPlus::new(7);
        let spiked: Vec<f64> = (0..5_000).map(|_| always.perturb(2.0, &mut rng)).collect();
        // factor = 1 + 0.5·Exp(1): strictly above ideal, mean ≈ 1.5×.
        assert!(spiked.iter().all(|&x| x > 2.0));
        let avg = pwu_stats::mean(&spiked);
        assert!((avg - 3.0).abs() < 0.1, "spiked mean {avg}");
        // With the branch disabled nothing ever exceeds the ideal.
        let never = NoiseModel {
            sigma: 0.0,
            outlier_prob: 0.0,
            outlier_scale: 0.5,
        };
        assert!((0..1000).all(|_| never.perturb(2.0, &mut rng) == 2.0));
        // At realistic rates the spikes live in the far right tail: the 99.9%
        // quantile dwarfs the jitter-only quantile.
        let rare = NoiseModel::quiet();
        let jitter_only = NoiseModel {
            outlier_prob: 0.0,
            ..NoiseModel::quiet()
        };
        let a: Vec<f64> = (0..50_000).map(|_| rare.perturb(1.0, &mut rng)).collect();
        let b: Vec<f64> = (0..50_000)
            .map(|_| jitter_only.perturb(1.0, &mut rng))
            .collect();
        let qa = pwu_stats::quantile(&a, 0.999);
        let qb = pwu_stats::quantile(&b, 0.999);
        assert!(qa > qb * 1.05, "outlier tail {qa} vs jitter tail {qb}");
    }

    #[test]
    fn robust_aggregation_recovers_ideal_under_spikes_where_mean_does_not() {
        // The paper-motivating case: 35 repeats, a daemon fires on ~8% of
        // them with a +300% spike. The plain mean is biased by ≈ +24%;
        // median and trimmed mean stay within 2% of the ideal time.
        let spiky = NoiseModel {
            sigma: 0.02,
            outlier_prob: 0.08,
            outlier_scale: 3.0,
        };
        let mut rng = Xoshiro256PlusPlus::new(21);
        let ideal = 0.4;
        let mut mean_err_worst: f64 = 0.0;
        let mut median_err_worst: f64 = 0.0;
        let mut trimmed_err_worst: f64 = 0.0;
        for _ in 0..50 {
            let reps: Vec<f64> = (0..35).map(|_| spiky.perturb(ideal, &mut rng)).collect();
            mean_err_worst = mean_err_worst.max((pwu_stats::mean(&reps) / ideal - 1.0).abs());
            median_err_worst = median_err_worst.max((pwu_stats::median(&reps) / ideal - 1.0).abs());
            trimmed_err_worst =
                trimmed_err_worst.max((pwu_stats::trimmed_mean(&reps, 0.2) / ideal - 1.0).abs());
        }
        assert!(
            mean_err_worst > 0.10,
            "the plain mean should be visibly biased at least once, worst {mean_err_worst}"
        );
        assert!(
            median_err_worst < 0.03,
            "median worst error {median_err_worst}"
        );
        assert!(
            trimmed_err_worst < 0.03,
            "trimmed-mean worst error {trimmed_err_worst}"
        );
    }

    #[test]
    fn measurements_stay_positive() {
        let m = NoiseModel::cluster();
        let mut rng = Xoshiro256PlusPlus::new(2);
        assert!((0..10_000).all(|_| m.perturb(1e-3, &mut rng) > 0.0));
    }

    #[test]
    fn cluster_noise_has_higher_dispersion() {
        let mut rng = Xoshiro256PlusPlus::new(3);
        let quiet = NoiseModel::quiet();
        let cluster = NoiseModel::cluster();
        let q: Vec<f64> = (0..20_000).map(|_| quiet.perturb(1.0, &mut rng)).collect();
        let c: Vec<f64> = (0..20_000)
            .map(|_| cluster.perturb(1.0, &mut rng))
            .collect();
        assert!(pwu_stats::std_dev(&c) > pwu_stats::std_dev(&q));
    }
}
