//! Platform models.
//!
//! Table IV of the paper: kernels run on Platform A (Xeon E5-2680 v3,
//! 2.5 GHz, 24 cores, 64 GB) and applications on Platform B (E5-2680 v4,
//! 2.4 GHz, 28 cores, 128 GB, 100 Gb/s Omni-Path). The kernels are serial,
//! so the kernel model only needs single-core parameters; the network side
//! of Platform B lives in `pwu-apps`.

/// One cache level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Load-to-use latency in cycles.
    pub latency: f64,
}

/// Single-core machine model used by the kernel cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Cache hierarchy, L1 first.
    pub caches: Vec<CacheLevel>,
    /// Main-memory access latency in cycles.
    pub memory_latency: f64,
    /// Sustained single-core memory bandwidth in bytes/cycle.
    pub memory_bandwidth: f64,
    /// Scalar floating add/mul throughput (ops per cycle).
    pub flops_per_cycle: f64,
    /// Latency of one double-precision division in cycles.
    pub div_latency: f64,
    /// SIMD vector width in doubles (4 for AVX2).
    pub vector_width: f64,
    /// Efficiency factor of vectorized loops (imperfect due to prologue,
    /// alignment and mixed operations).
    pub vector_efficiency: f64,
    /// Architectural floating-point registers usable by register tiling.
    pub fp_registers: u32,
    /// Cycles of loop overhead (compare + branch + increment) per iteration
    /// of a non-unrolled innermost loop.
    pub loop_overhead: f64,
    /// Penalty in cycles per spilled live value per iteration.
    pub spill_penalty: f64,
}

impl MachineModel {
    /// Platform A: Xeon E5-2680 v3 (Haswell), the kernel platform.
    #[must_use]
    pub fn platform_a() -> Self {
        Self {
            name: "Platform A (E5-2680 v3)",
            clock_ghz: 2.5,
            caches: vec![
                CacheLevel {
                    capacity: 32 * 1024,
                    line: 64,
                    ways: 8,
                    latency: 4.0,
                },
                CacheLevel {
                    capacity: 256 * 1024,
                    line: 64,
                    ways: 8,
                    latency: 12.0,
                },
                CacheLevel {
                    capacity: 30 * 1024 * 1024,
                    line: 64,
                    ways: 20,
                    latency: 42.0,
                },
            ],
            memory_latency: 200.0,
            memory_bandwidth: 8.0,
            flops_per_cycle: 4.0,
            div_latency: 14.0,
            vector_width: 4.0,
            vector_efficiency: 0.7,
            fp_registers: 16,
            loop_overhead: 2.0,
            spill_penalty: 3.0,
        }
    }

    /// Platform B: Xeon E5-2680 v4 (Broadwell), the application platform.
    #[must_use]
    pub fn platform_b() -> Self {
        Self {
            name: "Platform B (E5-2680 v4)",
            clock_ghz: 2.4,
            caches: vec![
                CacheLevel {
                    capacity: 32 * 1024,
                    line: 64,
                    ways: 8,
                    latency: 4.0,
                },
                CacheLevel {
                    capacity: 256 * 1024,
                    line: 64,
                    ways: 8,
                    latency: 12.0,
                },
                CacheLevel {
                    capacity: 35 * 1024 * 1024,
                    line: 64,
                    ways: 20,
                    latency: 44.0,
                },
            ],
            memory_latency: 210.0,
            memory_bandwidth: 8.5,
            flops_per_cycle: 4.0,
            div_latency: 14.0,
            vector_width: 4.0,
            vector_efficiency: 0.7,
            fp_registers: 16,
            loop_overhead: 2.0,
            spill_penalty: 3.0,
        }
    }

    /// Platform C: a hypothetical AVX-512-class node (wider vectors, larger
    /// private L2, slower clock). Not part of the paper's Table IV; used by
    /// the `transfer` study to probe model portability across machines whose
    /// performance surfaces are *not* affinely related (vectorization and
    /// tiling optima genuinely move).
    #[must_use]
    pub fn platform_c() -> Self {
        Self {
            name: "Platform C (hypothetical AVX-512)",
            clock_ghz: 2.0,
            caches: vec![
                CacheLevel {
                    capacity: 48 * 1024,
                    line: 64,
                    ways: 12,
                    latency: 5.0,
                },
                CacheLevel {
                    capacity: 1024 * 1024,
                    line: 64,
                    ways: 16,
                    latency: 14.0,
                },
                CacheLevel {
                    capacity: 36 * 1024 * 1024,
                    line: 64,
                    ways: 11,
                    latency: 50.0,
                },
            ],
            memory_latency: 240.0,
            memory_bandwidth: 10.0,
            flops_per_cycle: 8.0,
            div_latency: 16.0,
            vector_width: 8.0,
            vector_efficiency: 0.6,
            fp_registers: 32,
            loop_overhead: 2.0,
            spill_penalty: 3.0,
        }
    }

    /// Converts cycles to seconds on this machine.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_are_distinct_and_sane() {
        let a = MachineModel::platform_a();
        let b = MachineModel::platform_b();
        assert_ne!(a.name, b.name);
        assert_eq!(a.caches.len(), 3);
        // Monotone hierarchy.
        for m in [&a, &b] {
            for w in m.caches.windows(2) {
                assert!(w[0].capacity < w[1].capacity);
                assert!(w[0].latency < w[1].latency);
            }
            assert!(m.memory_latency > m.caches.last().unwrap().latency);
        }
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let a = MachineModel::platform_a();
        assert!((a.cycles_to_seconds(2.5e9) - 1.0).abs() < 1e-12);
    }
}
