//! Measurement-fault injection for the kernel simulator.
//!
//! The paper's measurements are real runs of Orio-transformed code, and real
//! runs fail: the generated source can break the compiler (deep unroll-jam
//! is notorious), the binary can crash, a run can hang past the harness
//! timeout, and the timer can report garbage. [`FaultModel`] layers those
//! failure modes on top of [`crate::NoiseModel`]'s benign jitter so the
//! active-learning loop can be exercised — and property-tested — against the
//! conditions it must survive at paper scale.
//!
//! Determinism contract:
//!
//! - **Compile failures are a property of the configuration.** Whether a
//!   configuration compiles is decided by hashing its levels with the model
//!   seed, not by drawing from the measurement RNG. Retrying the same
//!   configuration therefore fails the same way every time (which is what
//!   makes quarantining it correct), and the decision consumes no RNG state.
//! - **Crashes, timeouts, spikes and garbage readings are transient.** They
//!   draw from the caller's measurement RNG, so retries can succeed and the
//!   whole fault sequence replays bit-exactly from a seed.

use pwu_space::{Configuration, FailureKind, MeasureOutcome};
use pwu_stats::{SplitMix64, Xoshiro256PlusPlus};

/// Configurable fault-injection model (all rates are probabilities per
/// attempt; zero disables that fault class).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Seed of the per-configuration compile-failure hash.
    pub seed: u64,
    /// Base probability that a configuration fails to compile.
    pub compile_fail_prob: f64,
    /// Extra compile-failure probability for *aggressive* configurations
    /// (the kernel decides what counts as aggressive — deep unroll-jam).
    pub aggressive_compile_fail_prob: f64,
    /// Seconds charged for a failed compile (Orio regenerates + recompiles).
    pub compile_cost: f64,
    /// Per-attempt probability that the binary crashes mid-run.
    pub crash_prob: f64,
    /// Per-attempt probability that the timer reports garbage: the run
    /// completes (time is burned) but the reading is unusable.
    pub bad_reading_prob: f64,
    /// Per-attempt probability of a finite outlier spike on the reading, on
    /// top of the noise model's own rare outliers.
    pub spike_prob: f64,
    /// Relative magnitude of an injected spike (3.0 → 4× the true reading).
    pub spike_scale: f64,
    /// Harness timeout in seconds; a run exceeding it is killed and charged
    /// the full budget. `None` disables the timeout.
    pub timeout: Option<f64>,
}

impl FaultModel {
    /// A fully disabled model: behaves exactly like having no fault model.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            compile_fail_prob: 0.0,
            aggressive_compile_fail_prob: 0.0,
            compile_cost: 0.0,
            crash_prob: 0.0,
            bad_reading_prob: 0.0,
            spike_prob: 0.0,
            spike_scale: 0.0,
            timeout: None,
        }
    }

    /// A mildly hostile harness: occasional compile breaks on aggressive
    /// transforms, rare crashes and spikes.
    #[must_use]
    pub fn light(seed: u64) -> Self {
        Self {
            seed,
            compile_fail_prob: 0.01,
            aggressive_compile_fail_prob: 0.05,
            compile_cost: 2.0,
            crash_prob: 0.01,
            bad_reading_prob: 0.005,
            spike_prob: 0.01,
            spike_scale: 2.0,
            timeout: None,
        }
    }

    /// The stress setting used by the fault-injection test suite: roughly a
    /// 20 % chance that any given attempt produces no usable reading.
    #[must_use]
    pub fn stress(seed: u64) -> Self {
        Self {
            seed,
            compile_fail_prob: 0.08,
            aggressive_compile_fail_prob: 0.15,
            compile_cost: 2.0,
            crash_prob: 0.08,
            bad_reading_prob: 0.04,
            spike_prob: 0.05,
            spike_scale: 4.0,
            timeout: None,
        }
    }

    /// Overrides the harness timeout.
    #[must_use]
    pub fn with_timeout(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "timeout must be positive");
        self.timeout = Some(seconds);
        self
    }

    /// True when at least one fault class can fire.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.compile_fail_prob > 0.0
            || self.aggressive_compile_fail_prob > 0.0
            || self.crash_prob > 0.0
            || self.bad_reading_prob > 0.0
            || self.spike_prob > 0.0
            || self.timeout.is_some()
    }

    /// Deterministic per-configuration compile verdict.
    ///
    /// Hashes the configuration levels with the model seed into a uniform
    /// variate and compares against the (possibly aggressiveness-boosted)
    /// compile-failure probability. No RNG state is consumed, so the verdict
    /// is stable across retries, checkpoint/resume and repeat counts.
    #[must_use]
    pub fn compile_fails(&self, cfg: &Configuration, aggressive: bool) -> bool {
        let p = self.compile_fail_prob
            + if aggressive {
                self.aggressive_compile_fail_prob
            } else {
                0.0
            };
        if p <= 0.0 {
            return false;
        }
        let mut acc = SplitMix64::new(self.seed ^ 0xC0F1_13FA_17D0_0D5E).next();
        for &level in cfg.levels() {
            acc =
                SplitMix64::new(acc ^ u64::from(level).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next();
        }
        let u = (acc >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Runs the transient fault pipeline around one noisy measurement.
    ///
    /// `ideal` is the configuration's noise-free time and `perturb` produces
    /// one benign noisy reading from it (the noise model). The compile
    /// verdict is *not* applied here — callers check
    /// [`FaultModel::compile_fails`] first, because it is per-configuration,
    /// not per-attempt.
    pub fn measure_transient(
        &self,
        ideal: f64,
        rng: &mut Xoshiro256PlusPlus,
        perturb: impl FnOnce(f64, &mut Xoshiro256PlusPlus) -> f64,
    ) -> MeasureOutcome {
        // Crash first: the run dies partway, burning a random fraction of
        // the runtime it would have taken.
        if self.crash_prob > 0.0 && rng.next_f64() < self.crash_prob {
            let fraction = rng.next_f64();
            return MeasureOutcome::Failed {
                kind: FailureKind::Crash,
                cost: ideal * fraction,
            };
        }
        let mut t = perturb(ideal, rng);
        if self.spike_prob > 0.0 && rng.next_f64() < self.spike_prob {
            t *= 1.0 + self.spike_scale;
        }
        // A hung run is killed at the timeout and charged the full budget.
        if let Some(limit) = self.timeout {
            if t > limit {
                return MeasureOutcome::Timeout { cost: limit };
            }
        }
        // The run completed (its time was burned) but the reading is junk.
        if self.bad_reading_prob > 0.0 && rng.next_f64() < self.bad_reading_prob {
            return MeasureOutcome::Failed {
                kind: FailureKind::BadReading,
                cost: t,
            };
        }
        MeasureOutcome::Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;

    fn cfg(levels: &[u32]) -> Configuration {
        Configuration::new(levels.to_vec())
    }

    #[test]
    fn disabled_model_never_fires() {
        let fm = FaultModel::none();
        assert!(!fm.is_enabled());
        let mut rng = Xoshiro256PlusPlus::new(1);
        assert!(!fm.compile_fails(&cfg(&[1, 2, 3]), true));
        let out = fm.measure_transient(0.5, &mut rng, |t, _| t);
        assert_eq!(out, MeasureOutcome::Ok(0.5));
    }

    #[test]
    fn compile_verdict_is_deterministic_per_config() {
        let fm = FaultModel {
            compile_fail_prob: 0.3,
            ..FaultModel::stress(42)
        };
        let mut failed = 0;
        for i in 0..400u32 {
            let c = cfg(&[i, i / 7, i % 5]);
            let first = fm.compile_fails(&c, false);
            // Stable across calls — a compile error cannot be retried away.
            for _ in 0..3 {
                assert_eq!(fm.compile_fails(&c, false), first);
            }
            failed += usize::from(first);
        }
        // ~30% of configurations fail; allow generous slack.
        assert!((60..180).contains(&failed), "{failed} of 400 failed");
        // A different seed re-rolls the verdicts.
        let other = FaultModel {
            seed: 43,
            ..fm.clone()
        };
        let differs = (0..400u32).any(|i| {
            other.compile_fails(&cfg(&[i, i / 7, i % 5]), false)
                != fm.compile_fails(&cfg(&[i, i / 7, i % 5]), false)
        });
        assert!(differs, "seed must matter");
    }

    #[test]
    fn aggressive_configs_fail_compile_more_often() {
        let fm = FaultModel {
            compile_fail_prob: 0.05,
            aggressive_compile_fail_prob: 0.4,
            ..FaultModel::none()
        };
        let fm = FaultModel { seed: 7, ..fm };
        let count = |aggressive: bool| {
            (0..500u32)
                .filter(|&i| fm.compile_fails(&cfg(&[i, i * 3]), aggressive))
                .count()
        };
        let tame = count(false);
        let aggressive = count(true);
        assert!(
            aggressive > tame + 50,
            "aggressive {aggressive} vs tame {tame}"
        );
    }

    #[test]
    fn transient_pipeline_replays_from_seed() {
        let fm = FaultModel::stress(5).with_timeout(10.0);
        let noise = NoiseModel::quiet();
        let run = |seed: u64| -> Vec<MeasureOutcome> {
            let mut rng = Xoshiro256PlusPlus::new(seed);
            (0..200)
                .map(|_| fm.measure_transient(1.0, &mut rng, |t, r| noise.perturb(t, r)))
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn stress_rates_produce_every_failure_class() {
        let fm = FaultModel::stress(11).with_timeout(1.2);
        let noise = NoiseModel::cluster();
        let mut rng = Xoshiro256PlusPlus::new(3);
        let mut crashes = 0;
        let mut bad = 0;
        let mut timeouts = 0;
        let mut ok = 0;
        for _ in 0..4000 {
            match fm.measure_transient(1.0, &mut rng, |t, r| noise.perturb(t, r)) {
                MeasureOutcome::Ok(t) => {
                    assert!(t.is_finite() && t > 0.0);
                    ok += 1;
                }
                MeasureOutcome::Failed {
                    kind: FailureKind::Crash,
                    cost,
                } => {
                    assert!((0.0..=1.0).contains(&cost));
                    crashes += 1;
                }
                MeasureOutcome::Failed {
                    kind: FailureKind::BadReading,
                    cost,
                } => {
                    assert!(cost > 0.0);
                    bad += 1;
                }
                MeasureOutcome::Failed {
                    kind: FailureKind::Compile | FailureKind::Timeout,
                    ..
                } => unreachable!("compile/timeout never surface as Failed here"),
                MeasureOutcome::Timeout { cost } => {
                    assert_eq!(cost, 1.2);
                    timeouts += 1;
                }
            }
        }
        assert!(crashes > 100, "crashes {crashes}");
        assert!(bad > 50, "bad readings {bad}");
        assert!(timeouts > 50, "timeouts {timeouts}");
        assert!(ok > 2500, "ok {ok}");
    }
}
