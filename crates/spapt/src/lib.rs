//! Simulated SPAPT kernel benchmarks.
//!
//! SPAPT ("Search Problems in Automatic Performance Tuning", Balaprakash et
//! al. 2012) packages serial computation kernels with Orio-style code
//! transformations: loop tiling, unroll-jam, register tiling, scalar
//! replacement and vectorization. The paper models the execution time of 12
//! of those kernels as a function of the transformation parameters.
//!
//! Because the real SPAPT harness needs Orio, a C compiler and a quiesced
//! Xeon node, this crate *simulates* the kernels instead: each kernel is a
//! real loop-nest IR (arrays, affine accesses, flop counts), the
//! transformation parameters are applied structurally (tiled/unrolled loop
//! structure, register pressure, vectorizability), and an analytical machine
//! model (multi-level cache footprint analysis + instruction costs) maps the
//! transformed nest to seconds. A trace-driven set-associative cache
//! simulator ([`cachesim`]) cross-checks the analytical cache model in tests.
//! What matters for the reproduction is the *shape* of the resulting
//! configuration→time surface: multimodal, strongly interacting, with a
//! small elite region and a heavy tail — the same structure the sampling
//! strategies face on real hardware. See `DESIGN.md` for the substitution
//! argument.
//!
//! Modules:
//! - [`machine`] — platform models (Table IV's Platform A/B)
//! - [`ir`] — loop-nest IR: arrays, affine references, statements
//! - [`transform`] — SPAPT/Orio-style transformation parameters and their
//!   structural application
//! - [`cache`] — analytical multi-level cache-miss model
//! - [`cachesim`] — trace-driven set-associative LRU simulator (validation)
//! - [`cost`] — the cycle/time model combining compute and memory
//! - [`noise`] — wall-clock measurement-noise model
//! - [`fault`] — compile-failure / crash / timeout / garbage-reading
//!   injection layered on the noise model
//! - [`evalcache`] — memoization of the pure, RNG-free half of measurement
//!   (base cost, legality, aggressiveness), so repeated measurements pay
//!   for one model evaluation plus cheap noise draws
//! - [`kernels`] — the 12 kernel definitions and their parameter spaces

pub mod cache;
pub mod cachesim;
pub mod cost;
pub mod evalcache;
pub mod fault;
pub mod ir;
pub mod kernels;
pub mod machine;
pub mod noise;
pub mod transform;

pub use evalcache::{CachedEval, EvalCache, Uncached};
pub use fault::FaultModel;
pub use kernels::{all_kernels, extended_kernels, kernel_by_name, Kernel};
pub use machine::MachineModel;
pub use noise::NoiseModel;
pub use transform::{BlockLegality, BlockTransform};
