//! Trace-driven set-associative cache simulator.
//!
//! Used to validate the analytical model in [`crate::cache`]: for tiny
//! problem sizes the transformed nest's iteration space is enumerated, every
//! array reference is turned into a byte address, and the addresses are
//! replayed through an LRU hierarchy. Tests then check that the analytical
//! miss counts agree with the simulated ones to within a small factor.
//!
//! The simulator is exact but O(total accesses), so it is only run on nests
//! with ≲ 10⁶ iterations.

use std::collections::HashMap;

use crate::ir::LoopNest;
use crate::machine::MachineModel;
use crate::transform::TransformedNest;

/// One set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line: u64,
    n_sets: u64,
    ways: usize,
    /// Per set: resident line tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sizes) or the capacity is
    /// not a multiple of `line × ways`.
    #[must_use]
    pub fn new(capacity: u64, line: u64, ways: u32) -> Self {
        assert!(capacity > 0 && line > 0 && ways > 0, "degenerate geometry");
        let ways = ways as usize;
        assert_eq!(
            capacity % (line * ways as u64),
            0,
            "capacity must be a multiple of line × ways"
        );
        let n_sets = capacity / (line * ways as u64);
        Self {
            line,
            n_sets,
            ways,
            sets: vec![Vec::new(); n_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses one byte address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line;
        let set_idx = (line_addr % self.n_sets) as usize;
        let tag = line_addr / self.n_sets;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Hit count so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// An inclusive multi-level hierarchy (access stops at the first hit).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<SetAssocCache>,
    accesses: u64,
}

impl Hierarchy {
    /// Builds the hierarchy described by a machine model.
    #[must_use]
    pub fn for_machine(machine: &MachineModel) -> Self {
        Self {
            levels: machine
                .caches
                .iter()
                .map(|c| SetAssocCache::new(c.capacity, c.line, c.ways))
                .collect(),
            accesses: 0,
        }
    }

    /// Accesses an address through the hierarchy.
    pub fn access(&mut self, addr: u64) {
        self.accesses += 1;
        for level in &mut self.levels {
            if level.access(addr) {
                return;
            }
        }
    }

    /// Per-level miss counts (lines fetched into each level).
    #[must_use]
    pub fn misses(&self) -> Vec<u64> {
        self.levels.iter().map(SetAssocCache::misses).collect()
    }

    /// Total accesses replayed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// Replays the full access trace of a transformed nest through a hierarchy
/// and returns the per-level miss counts.
///
/// Arrays are laid out consecutively, 4 KiB-aligned, in declaration order.
/// Partial tiles are clamped to the original extents, exactly as generated
/// tiled code would.
///
/// # Panics
/// Panics if the nest exceeds 2²⁴ iterations (guard against accidental
/// full-size simulation).
#[must_use]
pub fn simulate(nest: &LoopNest, t: &TransformedNest, machine: &MachineModel) -> Vec<u64> {
    assert!(
        t.iterations() <= (1 << 24) as f64,
        "trace simulation limited to small nests"
    );
    // Array base addresses.
    let mut bases = HashMap::new();
    let mut next = 0u64;
    for (i, a) in nest.arrays.iter().enumerate() {
        bases.insert(i, next);
        next = (next + a.bytes() + 4095) & !4095;
    }
    // Row-major strides per array.
    let strides: Vec<Vec<u64>> = nest
        .arrays
        .iter()
        .map(|a| {
            let mut s = vec![a.elem_bytes; a.dims.len()];
            for d in (0..a.dims.len().saturating_sub(1)).rev() {
                s[d] = s[d + 1] * a.dims[d + 1];
            }
            s
        })
        .collect();

    let mut hierarchy = Hierarchy::for_machine(machine);
    let n_loops = t.loops.len();
    let mut pos = vec![0u64; n_loops]; // odometer over transformed loops
    let n_orig = nest.depth();

    'outer: loop {
        // Original iteration values from the segment positions.
        let mut vals = vec![0u64; n_orig];
        for (p, l) in t.loops.iter().enumerate() {
            let scale = t.loops[p + 1..]
                .iter()
                .filter(|m| m.orig == l.orig)
                .map(|m| m.trip)
                .product::<u64>();
            vals[l.orig] += pos[p] * scale;
        }
        // Clamp partial tiles: skip iterations beyond the original extents.
        let in_bounds = vals.iter().zip(&nest.loops).all(|(&v, l)| v < l.extent);
        if in_bounds {
            for stmt in &nest.stmts {
                for r in stmt.reads.iter().chain(&stmt.writes) {
                    let decl_strides = &strides[r.array];
                    let mut addr = bases[&r.array];
                    for (d, e) in r.index.iter().enumerate() {
                        let mut v = e.offset;
                        for (l, &c) in e.coeffs.iter().enumerate() {
                            v += c * vals[l] as i64;
                        }
                        let dim = nest.arrays[r.array].dims[d] as i64;
                        let v = v.clamp(0, dim - 1) as u64;
                        addr += v * decl_strides[d];
                    }
                    hierarchy.access(addr);
                }
            }
        }
        // Advance the odometer (innermost fastest).
        for p in (0..n_loops).rev() {
            pos[p] += 1;
            if pos[p] < t.loops[p].trip {
                continue 'outer;
            }
            pos[p] = 0;
        }
        break;
    }
    hierarchy.misses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, LoopNest, Statement};
    use crate::transform::{apply, BlockTransform};

    #[test]
    fn direct_mapped_conflict() {
        // Two addresses mapping to the same set of a direct-mapped cache
        // evict each other forever.
        let mut c = SetAssocCache::new(1024, 64, 1);
        for _ in 0..10 {
            c.access(0);
            c.access(1024);
        }
        assert_eq!(c.misses(), 20);
        // Two-way associative holds both.
        let mut c2 = SetAssocCache::new(1024, 64, 2);
        for _ in 0..10 {
            c2.access(0);
            c2.access(1024);
        }
        assert_eq!(c2.misses(), 2);
        assert_eq!(c2.hits(), 18);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, one set of interest: lines A, B, C in the same set.
        let mut c = SetAssocCache::new(128, 64, 2); // 1 set, 2 ways
        c.access(0); // A miss
        c.access(64); // B miss
        c.access(0); // A hit (A now MRU)
        c.access(128); // C miss, evicts B
        assert!(!c.access(64)); // B was evicted
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = SetAssocCache::new(32 * 1024, 64, 8);
        for i in 0..8 * 1024u64 {
            c.access(i * 8); // 64 KB of doubles: 1024 lines, exceeds cache
        }
        assert_eq!(c.misses(), 1024);
    }

    fn stream_nest(n: u64) -> LoopNest {
        LoopNest {
            loops: vec![LoopDim {
                name: "i".into(),
                extent: n,
            }],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(1, 0)]),
                    ArrayRef::new(1, vec![LinIndex::var(1, 0)]),
                ],
                writes: vec![ArrayRef::new(2, vec![LinIndex::var(1, 0)])],
                adds: 1,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("a", vec![n]),
                ArrayDecl::doubles("b", vec![n]),
                ArrayDecl::doubles("y", vec![n]),
            ],
        }
    }

    #[test]
    fn simulated_stream_matches_compulsory_misses() {
        let n = 64 * 1024; // 512 KB per array: misses L1 and L2
        let nest = stream_nest(n);
        let t = apply(&nest, &BlockTransform::identity(1));
        let m = MachineModel::platform_a();
        let misses = simulate(&nest, &t, &m);
        let lines = 3 * n / 8; // 3 arrays, 8 doubles per line
        assert_eq!(misses[0], lines);
        assert_eq!(misses[1], lines);
        // L3 (30 MB) holds everything: still compulsory misses only.
        assert_eq!(misses[2], lines);
    }

    #[test]
    fn analytic_model_agrees_with_simulation_on_mm() {
        // 96×96 MM: 3 arrays × 72 KB; exceeds L1+L2 together untiled.
        let n = 96u64;
        let nl = 3;
        let nest = LoopNest {
            loops: vec![
                LoopDim {
                    name: "i".into(),
                    extent: n,
                },
                LoopDim {
                    name: "j".into(),
                    extent: n,
                },
                LoopDim {
                    name: "k".into(),
                    extent: n,
                },
            ],
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 2)]),
                    ArrayRef::new(1, vec![LinIndex::var(nl, 2), LinIndex::var(nl, 1)]),
                    ArrayRef::new(2, vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)]),
                ],
                writes: vec![ArrayRef::new(
                    2,
                    vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)],
                )],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![n, n]),
                ArrayDecl::doubles("B", vec![n, n]),
                ArrayDecl::doubles("C", vec![n, n]),
            ],
        };
        let m = MachineModel::platform_a();
        for tiles in [vec![(1u64, 1u64); 3], vec![(1, 32), (1, 32), (1, 32)]] {
            let mut p = BlockTransform::identity(3);
            p.tiles = tiles.clone();
            let t = apply(&nest, &p);
            let simulated = simulate(&nest, &t, &m);
            let analytic = crate::cache::analyze(&nest, &t, &m);
            // L1 misses within a factor of 4 — the analytic model is a
            // capacity model and ignores conflicts, so exact agreement is
            // not expected, but the order of magnitude must hold.
            let sim = simulated[0] as f64;
            let ana = analytic.level_misses[0].total();
            assert!(
                ana <= sim * 4.0 && sim <= ana * 4.0,
                "tiles {tiles:?}: analytic {ana} vs simulated {sim}"
            );
        }
    }
}
