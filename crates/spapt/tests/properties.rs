//! Property-based tests for the kernel simulators.

use proptest::prelude::*;
use pwu_space::TuningTarget;
use pwu_spapt::{all_kernels, kernel_by_name, NoiseModel};
use pwu_stats::Xoshiro256PlusPlus;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every configuration of every kernel yields a positive, finite time —
    /// the annotator can never poison the training set.
    #[test]
    fn all_times_positive_and_finite(seed in 0u64..10_000) {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        for k in all_kernels() {
            let cfg = k.space().sample(&mut rng);
            let t = k.ideal_time(&cfg);
            prop_assert!(t.is_finite() && t > 0.0, "{}: {t}", k.name());
            // Sanity ceiling: no config should "run" for more than an hour.
            prop_assert!(t < 3600.0, "{}: absurd time {t}", k.name());
        }
    }

    /// Noisy measurements scatter around the ideal time.
    #[test]
    fn measurements_bracket_ideal(seed in 0u64..10_000) {
        let k = kernel_by_name("atax").expect("atax exists");
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let cfg = k.space().sample(&mut rng);
        let ideal = k.ideal_time(&cfg);
        let m = k.measure(&cfg, &mut rng);
        prop_assert!(m > 0.0);
        prop_assert!(m > ideal * 0.5 && m < ideal * 20.0, "measurement {m} vs ideal {ideal}");
    }

    /// The ideal surface is deterministic: same config, same time.
    #[test]
    fn ideal_time_is_a_function(seed in 0u64..10_000) {
        let k = kernel_by_name("mm").expect("mm exists");
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let cfg = k.space().sample(&mut rng);
        prop_assert_eq!(k.ideal_time(&cfg), k.ideal_time(&cfg));
    }

    /// Averaging repeats reduces dispersion (the reason the paper runs 35×).
    #[test]
    fn averaging_tightens_measurements(seed in 0u64..1000) {
        let k = kernel_by_name("gesummv")
            .expect("gesummv exists")
            .with_noise(NoiseModel::cluster());
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let cfg = k.space().sample(&mut rng);
        let ideal = k.ideal_time(&cfg);
        // Enough samples on both sides that the ~10x dispersion reduction of
        // 100-fold averaging cannot be masked by sampling luck.
        let single: Vec<f64> = (0..40).map(|_| k.measure(&cfg, &mut rng)).collect();
        let averaged: Vec<f64> = (0..40)
            .map(|_| k.measure_averaged(&cfg, 100, &mut rng))
            .collect();
        let dev = |xs: &[f64]| {
            xs.iter().map(|x| (x - ideal).abs()).sum::<f64>() / xs.len() as f64
        };
        prop_assert!(dev(&averaged) < dev(&single) * 0.8,
            "averaging did not tighten: {} vs {}", dev(&averaged), dev(&single));
    }
}
