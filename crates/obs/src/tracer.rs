//! The structured-event tracer: global enable flag, per-thread branch
//! buffers, span guards, and the fork/splice protocol the thread pool uses
//! to keep traces schedule-invariant.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::export::Trace;
use crate::registry;

/// One structured argument value on an event.
///
/// Only values that are themselves bit-deterministic may go on the
/// deterministic plane: counts, indices, cost-units, identifiers. Wall
/// times never travel as args — they ride the sidecar field instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned integer (counts, indices, sizes).
    U64(u64),
    /// Float (cost-units, scores); serialized via shortest round-trip
    /// formatting, which is deterministic for any given bit pattern.
    F64(f64),
    /// Short identifier (kernel name, session id, strategy).
    Str(String),
}

impl Arg {
    /// Unsigned-integer argument.
    #[must_use]
    pub fn u(v: u64) -> Self {
        Arg::U64(v)
    }

    /// Float argument (cost-units and other deterministic f64s).
    #[must_use]
    pub fn f(v: f64) -> Self {
        Arg::F64(v)
    }

    /// String argument.
    #[must_use]
    pub fn s(v: impl Into<String>) -> Self {
        Arg::Str(v.into())
    }
}

/// Event phase, mirroring the Chrome trace-event phases we export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Span begin.
    Begin,
    /// Span end.
    End,
    /// Point-in-time event.
    Instant,
}

impl Phase {
    pub(crate) fn letter(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "I",
        }
    }
}

/// One recorded event. Sequence numbers are *not* stored here — they are
/// assigned by position when a [`Trace`] is exported, after all branch
/// buffers have been spliced into one deterministic linear order.
#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub(crate) ph: Phase,
    pub(crate) name: &'static str,
    pub(crate) args: Vec<(&'static str, Arg)>,
    /// Sidecar timestamp (nanoseconds since the process anchor). `None`
    /// unless the `wallclock` feature is compiled in *and* the runtime
    /// flag is armed. Excluded from the deterministic export.
    pub(crate) wall_ns: Option<u64>,
}

/// Master switch: a disabled tracer records nothing and costs one relaxed
/// atomic load per instrumentation site.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Runtime arm switch for the timing sidecar (inert without the
/// `wallclock` feature).
static WALLCLOCK: AtomicBool = AtomicBool::new(false);

/// Events recorded outside any branch (the main/caller thread).
static ROOT: Mutex<Vec<Event>> = Mutex::new(Vec::new());

std::thread_local! {
    /// Stack of branch buffers installed on this thread by [`fork_run`].
    /// While non-empty, events go to the top buffer instead of [`ROOT`].
    static BRANCHES: RefCell<Vec<Vec<Event>>> = const { RefCell::new(Vec::new()) };
}

/// Turns event recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns event recording off (already-recorded events stay buffered until
/// [`drain`] or [`clear`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the tracer is currently recording.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms or disarms the wall-clock sidecar. Without the `wallclock`
/// feature this flag is stored but can never reach a clock — the crate
/// contains no timing code in that configuration.
pub fn set_wallclock(on: bool) {
    WALLCLOCK.store(on, Ordering::SeqCst);
}

/// Sidecar timestamp for the event being recorded, if the sidecar is both
/// compiled in and armed. This is the only function in the crate that can
/// touch a clock, and its output is write-only: it lands on the event's
/// `wall_ns` field and nowhere else.
#[cfg(feature = "wallclock")]
fn wall_now() -> Option<u64> {
    use std::sync::OnceLock;
    use std::time::Instant;
    if !WALLCLOCK.load(Ordering::Relaxed) {
        return None;
    }
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = ANCHOR.get_or_init(Instant::now);
    Some(u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

#[cfg(not(feature = "wallclock"))]
fn wall_now() -> Option<u64> {
    None
}

/// Appends an event to the current context: the innermost installed
/// branch buffer on this thread, or the global root otherwise.
fn record(ev: Event) {
    let overflow = BRANCHES.with(|b| {
        let mut stack = b.borrow_mut();
        match stack.last_mut() {
            Some(top) => {
                top.push(ev);
                None
            }
            None => Some(ev),
        }
    });
    if let Some(ev) = overflow {
        ROOT.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ev);
    }
}

/// Records an instant (point-in-time) event with the given args.
///
/// No-op while the tracer is disabled. Args must be deterministic values
/// (see [`Arg`]); never record thread ids, widths, deal orders, clock
/// readings, or addresses.
pub fn event<const N: usize>(name: &'static str, args: [(&'static str, Arg); N]) {
    if !is_enabled() {
        return;
    }
    record(Event {
        ph: Phase::Instant,
        name,
        args: args.into_iter().collect(),
        wall_ns: wall_now(),
    });
}

/// An active span: records `Begin` on creation (via [`span`]) and `End`
/// when dropped, so early returns and unwinding still close it.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    active: bool,
}

/// Opens a span. While the tracer is disabled the returned guard is inert.
pub fn span<const N: usize>(name: &'static str, args: [(&'static str, Arg); N]) -> Span {
    if !is_enabled() {
        return Span {
            name,
            active: false,
        };
    }
    record(Event {
        ph: Phase::Begin,
        name,
        args: args.into_iter().collect(),
        wall_ns: wall_now(),
    });
    Span { name, active: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            record(Event {
                ph: Phase::End,
                name: self.name,
                args: Vec::new(),
                wall_ns: wall_now(),
            });
        }
    }
}

/// Events recorded by one forked unit of work, awaiting [`splice`].
/// Opaque: the only thing a holder can do is put it back in order.
#[derive(Debug)]
pub struct BranchEvents(Vec<Event>);

/// Runs `f` with a fresh branch buffer installed on this thread and
/// returns its result together with everything it recorded.
///
/// This is the worker half of the schedule-invariance protocol: the
/// thread pool forks one branch per item, and nested (degraded) batches
/// inside `f` record into the same branch in their natural sequential
/// order. If `f` panics the buffer is discarded and the panic propagates.
pub fn fork_run<T>(f: impl FnOnce() -> T) -> (T, BranchEvents) {
    struct PopOnUnwind;
    impl Drop for PopOnUnwind {
        fn drop(&mut self) {
            BRANCHES.with(|b| {
                b.borrow_mut().pop();
            });
        }
    }
    BRANCHES.with(|b| b.borrow_mut().push(Vec::new()));
    let guard = PopOnUnwind;
    let out = f();
    std::mem::forget(guard);
    let events = BRANCHES.with(|b| {
        b.borrow_mut()
            .pop()
            .expect("fork_run installed a branch buffer")
    });
    (out, BranchEvents(events))
}

/// Splices branch buffers back into the current context, in the order
/// given. The caller (the thread pool) passes branches in input-index
/// order, which makes the final linear event sequence identical to the
/// sequential path regardless of which worker ran which item.
pub fn splice(branches: impl IntoIterator<Item = BranchEvents>) {
    let mut all: Vec<Event> = branches.into_iter().flat_map(|b| b.0).collect();
    if all.is_empty() {
        return;
    }
    let overflow = BRANCHES.with(|b| {
        let mut stack = b.borrow_mut();
        match stack.last_mut() {
            Some(top) => {
                top.append(&mut all);
                false
            }
            None => true,
        }
    });
    if overflow {
        ROOT.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&mut all);
    }
}

/// Takes every buffered root event plus a metrics snapshot as a [`Trace`].
///
/// Call from a quiesced point (no pool batches in flight); events still
/// sitting in un-spliced branches are not included.
#[must_use]
pub fn drain() -> Trace {
    let events = std::mem::take(&mut *ROOT.lock().unwrap_or_else(PoisonError::into_inner));
    Trace::new(events, registry::snapshot())
}

/// Discards all buffered root events without exporting them.
pub fn clear() {
    ROOT.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}
