//! `pwu-obs` — two-plane observability for the tuning stack.
//!
//! The crate gives every layer of the workspace (core loop, forest,
//! measurement, thread pool, service) one shared instrumentation surface
//! with two strictly separated planes:
//!
//! - **Deterministic plane.** Structured span/instant events keyed by
//!   monotonic sequence numbers and cost-units, plus registry counters
//!   whose totals are schedule-invariant. A deterministic trace export is
//!   *itself* part of the bit-identity contract (DESIGN.md §11/§13): the
//!   bytes are identical across `PWU_THREADS` widths and deal orders, and
//!   enabling tracing never changes any tuning result.
//! - **Timing sidecar.** Opt-in wall-clock capture, compiled only under the
//!   `wallclock` feature and armed only by [`set_wallclock`]. Captured
//!   nanoseconds are write-only: they ride on events into the full/Chrome
//!   exports and are excluded from the deterministic export, the registry,
//!   and every persisted artifact.
//!
//! Events recorded on pool worker threads land in per-item branch buffers
//! (forked by the rayon shim via [`fork_run`]) and are spliced back into
//! the parent context in input-index order ([`splice`]), so the final
//! linear event sequence — and therefore the sequence numbers assigned at
//! export — is independent of scheduling. Width 1 is the sequential path
//! and produces the identical order by construction.
//!
//! Tracing is off by default behind one atomic flag; a disabled span or
//! event costs a single relaxed load. Registry counters are always live
//! (plain commutative `u64` adds) and are snapshotted into every export.

mod export;
mod registry;
mod tracer;

pub use export::{diff_summaries, summarize, SpanStat, Summary, Trace};
pub use registry::{
    counter, counter_diag, gauge, reset_metrics, snapshot, Counter, Gauge, Metric, MetricValue,
    Plane,
};
pub use tracer::{
    clear, disable, drain, enable, event, fork_run, is_enabled, set_wallclock, span, splice, Arg,
    BranchEvents, Span,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the global tracer/registry state.
    pub(crate) fn obs_guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = obs_guard();
        clear();
        reset_metrics();
        disable();
        {
            let _s = span("quiet.span", [("n", Arg::u(3))]);
            event("quiet.event", []);
        }
        let trace = drain();
        assert!(trace.is_empty(), "disabled tracer must stay silent");
    }

    #[test]
    fn spans_nest_and_export_deterministically() {
        let _g = obs_guard();
        clear();
        reset_metrics();
        enable();
        {
            let _outer = span("outer", [("iter", Arg::u(1))]);
            event("point", [("cost", Arg::f(1.5)), ("tag", Arg::s("mm"))]);
            {
                let _inner = span("inner", []);
            }
        }
        disable();
        let trace = drain();
        let text = trace.deterministic_jsonl();
        // Other tests in this binary may have registered metrics; only the
        // header and event lines are under test here.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.contains("\"metric\":"))
            .collect();
        assert_eq!(lines.len(), 6, "header + 5 events: {text}");
        assert!(lines[0].contains("\"schema\":\"pwu-trace-v1\""));
        assert!(lines[1].contains("\"seq\":0") && lines[1].contains("\"ph\":\"B\""));
        assert!(lines[2].contains("\"cost\":1.5") && lines[2].contains("\"tag\":\"mm\""));
        assert!(lines[4].contains("\"ph\":\"E\"") && lines[4].contains("\"inner\""));
        assert!(lines[5].contains("\"ph\":\"E\"") && lines[5].contains("\"outer\""));
        // The deterministic export never carries wall-clock fields.
        assert!(!text.contains("wall_ns"));
    }

    #[test]
    fn fork_splice_reproduces_the_sequential_order() {
        let _g = obs_guard();
        clear();
        enable();
        // Sequential reference: three items recorded inline.
        for i in 0..3u64 {
            event("item", [("i", Arg::u(i))]);
        }
        disable();
        let sequential = drain().deterministic_jsonl();

        clear();
        enable();
        // Forked: record each item into a branch (out of order), splice in
        // index order — the export must match the sequential bytes.
        let mut branches: Vec<(usize, BranchEvents)> = [2u64, 0, 1]
            .iter()
            .map(|&i| {
                let ((), b) = fork_run(|| event("item", [("i", Arg::u(i))]));
                (usize::try_from(i).unwrap(), b)
            })
            .collect();
        branches.sort_by_key(|(i, _)| *i);
        splice(branches.into_iter().map(|(_, b)| b));
        disable();
        let forked = drain().deterministic_jsonl();
        assert_eq!(sequential, forked, "splice order must equal inline order");
    }

    #[test]
    fn registry_counters_split_planes() {
        let _g = obs_guard();
        clear();
        reset_metrics();
        let det = counter("test.det");
        let diag = counter_diag("test.diag");
        det.add(4);
        diag.add(7);
        let g = gauge("test.gauge");
        g.set(2.5);
        enable();
        disable();
        let trace = drain();
        let det_text = trace.deterministic_jsonl();
        assert!(det_text.contains("\"metric\":\"test.det\"") && det_text.contains(":4"));
        assert!(det_text.contains("\"metric\":\"test.gauge\""));
        assert!(
            !det_text.contains("test.diag"),
            "diagnostic metrics must stay out of the deterministic export"
        );
        let full_text = trace.full_jsonl();
        assert!(full_text.contains("test.diag") && full_text.contains(":7"));
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let _g = obs_guard();
        clear();
        reset_metrics();
        enable();
        {
            let _s = span("stage", [("n", Arg::u(2))]);
            event("mark", []);
        }
        disable();
        let chrome = drain().chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"B\"") && chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"i\""), "instants map to ph:i: {chrome}");
        assert!(chrome.trim_end().ends_with("]}"));
    }

    #[test]
    fn summarize_pairs_spans_and_diff_flags_regressions() {
        let _g = obs_guard();
        clear();
        reset_metrics();
        enable();
        for i in 0..3u64 {
            let _s = span("work", [("cost", Arg::f(2.0 + i as f64))]);
            event("tick", []);
        }
        disable();
        let text = drain().full_jsonl();
        let summary = summarize(&text).expect("own export must parse");
        let work = summary.spans.iter().find(|s| s.name == "work").unwrap();
        assert_eq!(work.count, 3);
        assert!((work.cost_total - 9.0).abs() < 1e-12, "cost {}", work.cost_total);
        let tick = summary.spans.iter().find(|s| s.name == "tick").unwrap();
        assert_eq!(tick.count, 3);

        // A doubled-cost run must be flagged by the diff.
        let mut slower = summary.clone();
        for s in &mut slower.spans {
            s.cost_total *= 2.0;
        }
        let report = diff_summaries(&summary, &slower, 0.10);
        assert!(report.regressed, "2x cost must regress: {}", report.text);
        let report = diff_summaries(&summary, &summary.clone(), 0.10);
        assert!(!report.regressed, "identical runs must not regress");
    }

    #[test]
    fn wallclock_sidecar_is_write_only() {
        let _g = obs_guard();
        clear();
        reset_metrics();
        set_wallclock(true);
        enable();
        {
            let _s = span("timed", []);
        }
        disable();
        set_wallclock(false);
        let trace = drain();
        let det = trace.deterministic_jsonl();
        assert!(
            !det.contains("wall_ns"),
            "deterministic export must strip the sidecar"
        );
        #[cfg(feature = "wallclock")]
        assert!(
            trace.full_jsonl().contains("wall_ns"),
            "full export must carry sidecar timings when armed"
        );
        #[cfg(not(feature = "wallclock"))]
        assert!(
            !trace.full_jsonl().contains("wall_ns"),
            "without the feature the runtime flag must be inert"
        );
    }
}
