//! `pwu-trace` — turn a `pwu-trace-v1` JSONL export into per-stage tables.
//!
//! ```text
//! pwu-trace summarize <trace.jsonl>        per-span cost/latency table + metrics
//! pwu-trace diff <base.jsonl> <new.jsonl>  compare two runs; exit 1 on regression
//! pwu-trace top <trace.jsonl> [N]          heaviest spans (wall time, else extent)
//! ```
//!
//! Works on both planes: deterministic traces have no wall column (the
//! sidecar is stripped), full traces show sidecar milliseconds.

use std::process::exit;

use pwu_obs::{diff_summaries, summarize, Summary};

fn load(path: &str) -> Summary {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("pwu-trace: cannot read {path}: {e}");
        exit(2);
    });
    summarize(&text).unwrap_or_else(|| {
        eprintln!("pwu-trace: {path} is not a pwu-trace-v1 export");
        exit(2);
    })
}

#[allow(clippy::cast_precision_loss)]
fn wall_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn print_summary(s: &Summary) {
    println!(
        "{:<30} {:>8} {:>14} {:>10} {:>12}",
        "span", "count", "cost", "extent", "wall ms"
    );
    for stat in &s.spans {
        let wall = if stat.wall_total_ns > 0 {
            format!("{:.3}", wall_ms(stat.wall_total_ns))
        } else {
            "-".to_string()
        };
        println!(
            "{:<30} {:>8} {:>14.3} {:>10} {:>12}",
            stat.name, stat.count, stat.cost_total, stat.seq_extent, wall
        );
    }
    if !s.metrics.is_empty() {
        println!("\n{:<40} {:>15} plane", "metric", "value");
        for (name, plane, value) in &s.metrics {
            println!("{name:<40} {value:>15} {plane}");
        }
    }
    println!("\n{} events total", s.events);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") if args.len() == 2 => {
            print_summary(&load(&args[1]));
        }
        Some("diff") if args.len() >= 3 => {
            let threshold = args
                .iter()
                .position(|a| a == "--threshold")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<f64>().ok())
                .map_or(0.10, |pct| pct / 100.0);
            let base = load(&args[1]);
            let new = load(&args[2]);
            let report = diff_summaries(&base, &new, threshold);
            print!("{}", report.text);
            if report.regressed {
                eprintln!(
                    "pwu-trace: regression over {:.0}% threshold",
                    threshold * 100.0
                );
                exit(1);
            }
            println!("no regression over {:.0}% threshold", threshold * 100.0);
        }
        Some("top") if args.len() >= 2 => {
            let n = args
                .get(2)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(10);
            let s = load(&args[1]);
            let mut spans = s.spans.clone();
            spans.sort_by(|a, b| {
                (b.wall_total_ns, b.seq_extent, b.count).cmp(&(
                    a.wall_total_ns,
                    a.seq_extent,
                    a.count,
                ))
            });
            println!(
                "{:<30} {:>8} {:>14} {:>10} {:>12}",
                "span", "count", "cost", "extent", "wall ms"
            );
            for stat in spans.iter().take(n) {
                println!(
                    "{:<30} {:>8} {:>14.3} {:>10} {:>12.3}",
                    stat.name,
                    stat.count,
                    stat.cost_total,
                    stat.seq_extent,
                    wall_ms(stat.wall_total_ns)
                );
            }
        }
        _ => {
            eprintln!(
                "usage: pwu-trace <summarize FILE | diff BASE NEW [--threshold PCT] | top FILE [N]>"
            );
            exit(2);
        }
    }
}
