//! Trace exports and trace analysis.
//!
//! Three serializations of one drained [`Trace`]:
//!
//! - **Deterministic JSONL** — the byte-identity artifact. Sequence
//!   numbers are assigned by position, the wall-clock sidecar is stripped,
//!   and only deterministic-plane metrics are appended, so the bytes are
//!   identical across `PWU_THREADS` widths and deal orders.
//! - **Full JSONL** — everything: sidecar `wall_ns` fields when armed and
//!   both metric planes. This is what `--trace <path>` writes.
//! - **Chrome trace-event JSON** — loadable in Perfetto / `chrome://tracing`;
//!   timestamps come from the sidecar when present, else sequence numbers.
//!
//! The module also parses its own JSONL back ([`summarize`]) into a
//! per-span cost/latency table used by the `pwu-trace` CLI (`summarize`,
//! `diff`, `top`).

use crate::registry::{Metric, MetricValue, Plane};
use crate::tracer::{Arg, Event, Phase};

/// A drained event log plus a metrics snapshot, ready to export.
#[derive(Debug)]
pub struct Trace {
    events: Vec<Event>,
    metrics: Vec<Metric>,
}

/// Serializes a string as a JSON string literal (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes an `f64` deterministically: shortest round-trip decimal for
/// finite values (identical for identical bit patterns), `null` otherwise.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_arg(a: &Arg) -> String {
    match a {
        Arg::U64(v) => format!("{v}"),
        Arg::F64(v) => json_f64(*v),
        Arg::Str(s) => json_str(s),
    }
}

fn args_object(args: &[(&'static str, Arg)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(k));
        out.push(':');
        out.push_str(&json_arg(v));
    }
    out.push('}');
    out
}

fn metric_value(v: MetricValue) -> String {
    match v {
        MetricValue::Count(c) => format!("{c}"),
        MetricValue::Value(f) => json_f64(f),
    }
}

impl Trace {
    pub(crate) fn new(events: Vec<Event>, metrics: Vec<Metric>) -> Self {
        Trace { events, metrics }
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn jsonl(&self, deterministic: bool) -> String {
        let plane = if deterministic { "deterministic" } else { "full" };
        let mut out = format!("{{\"schema\":\"pwu-trace-v1\",\"plane\":\"{plane}\"}}\n");
        for (seq, ev) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "{{\"seq\":{seq},\"ph\":\"{}\",\"name\":{}",
                ev.ph.letter(),
                json_str(ev.name)
            ));
            if !ev.args.is_empty() {
                out.push_str(",\"args\":");
                out.push_str(&args_object(&ev.args));
            }
            if !deterministic {
                if let Some(ns) = ev.wall_ns {
                    out.push_str(&format!(",\"wall_ns\":{ns}"));
                }
            }
            out.push_str("}\n");
        }
        for m in &self.metrics {
            if deterministic && m.plane != Plane::Deterministic {
                continue;
            }
            out.push_str(&format!(
                "{{\"metric\":{},\"plane\":\"{}\",\"value\":{}}}\n",
                json_str(m.name),
                m.plane.token(),
                metric_value(m.value)
            ));
        }
        out
    }

    /// The byte-identity export: sidecar stripped, deterministic-plane
    /// metrics only. This is what the determinism gate compares.
    #[must_use]
    pub fn deterministic_jsonl(&self) -> String {
        self.jsonl(true)
    }

    /// The complete export: sidecar timings (when armed) and both metric
    /// planes.
    #[must_use]
    pub fn full_jsonl(&self) -> String {
        self.jsonl(false)
    }

    /// Chrome trace-event JSON (open in Perfetto or `chrome://tracing`).
    /// Timestamps are sidecar microseconds when present, else sequence
    /// numbers (one "microsecond" per event).
    #[must_use]
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (seq, ev) in self.events.iter().enumerate() {
            if seq > 0 {
                out.push_str(",\n");
            }
            let ts = ev
                .wall_ns
                .map_or_else(|| format!("{seq}"), |ns| format!("{}", ns / 1000));
            let ph = match ev.ph {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"{ph}\",\"pid\":0,\"tid\":0,\"ts\":{ts}",
                json_str(ev.name)
            ));
            if ev.ph == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":");
                out.push_str(&args_object(&ev.args));
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Parsing our own JSONL back (for the pwu-trace CLI).
// ---------------------------------------------------------------------------

/// Extracts the string value of `"key":"..."` from a flat JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Our own identifiers never contain escapes; stop at the first quote.
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts a numeric value of `"key":123` / `"key":1.5` from a JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Aggregate statistics for one span/event name in a parsed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Event name.
    pub name: String,
    /// Number of occurrences (span opens plus instants).
    pub count: u64,
    /// Sum of the `cost` argument over all occurrences (cost-units).
    pub cost_total: f64,
    /// Total enclosed events across all spans of this name (sequence-number
    /// extent) — the deterministic "how much happened inside" measure.
    pub seq_extent: u64,
    /// Total sidecar wall time, nanoseconds (0 when the trace carries no
    /// sidecar).
    pub wall_total_ns: u64,
}

/// A parsed per-name summary of one trace file.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Per-name statistics, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Metric lines carried in the trace: `(name, plane, value-as-text)`.
    pub metrics: Vec<(String, String, String)>,
    /// Total number of events in the trace.
    pub events: u64,
}

impl Summary {
    /// Looks up a span stat by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Parses a `pwu-trace-v1` JSONL export (either plane) into per-name
/// aggregates. Returns `None` when the text is not a pwu trace.
#[must_use]
pub fn summarize(text: &str) -> Option<Summary> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if !header.contains("\"schema\":\"pwu-trace-v1\"") {
        return None;
    }
    let mut stats: std::collections::BTreeMap<String, SpanStat> = std::collections::BTreeMap::new();
    let mut open: Vec<(String, u64, Option<u64>)> = Vec::new();
    let mut metrics = Vec::new();
    let mut events = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(name) = field_str(line, "metric") {
            let plane = field_str(line, "plane").unwrap_or("?").to_string();
            let value = line
                .rsplit_once("\"value\":")
                .map_or_else(|| "?".to_string(), |(_, v)| v.trim_end_matches('}').to_string());
            metrics.push((name.to_string(), plane, value));
            continue;
        }
        let (Some(ph), Some(name)) = (field_str(line, "ph"), field_str(line, "name")) else {
            continue;
        };
        events += 1;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let seq = field_num(line, "seq").unwrap_or(0.0) as u64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let wall = field_num(line, "wall_ns").map(|v| v as u64);
        let entry = stats.entry(name.to_string()).or_insert_with(|| SpanStat {
            name: name.to_string(),
            count: 0,
            cost_total: 0.0,
            seq_extent: 0,
            wall_total_ns: 0,
        });
        match ph {
            "B" | "I" => {
                entry.count += 1;
                if let Some(cost) = field_num(line, "cost") {
                    entry.cost_total += cost;
                }
                if ph == "B" {
                    open.push((name.to_string(), seq, wall));
                }
            }
            "E" => {
                // Match the innermost open span with this name.
                if let Some(pos) = open.iter().rposition(|(n, _, _)| n == name) {
                    let (_, begin_seq, begin_wall) = open.remove(pos);
                    entry.seq_extent += seq.saturating_sub(begin_seq);
                    if let (Some(b), Some(e)) = (begin_wall, wall) {
                        entry.wall_total_ns += e.saturating_sub(b);
                    }
                }
            }
            _ => {}
        }
    }
    Some(Summary {
        spans: stats.into_values().collect(),
        metrics,
        events,
    })
}

/// The outcome of comparing two trace summaries.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Human-readable per-span comparison table.
    pub text: String,
    /// True when any span's cost or wall time grew beyond the threshold.
    pub regressed: bool,
}

fn ratio_flag(base: f64, new: f64, threshold: f64) -> (f64, bool) {
    if base <= 0.0 {
        return (1.0, false);
    }
    let r = new / base;
    (r, r > 1.0 + threshold)
}

/// Compares two summaries (`base` vs `new`); a span regresses when its
/// cost total or wall total grows by more than `threshold` (fractional,
/// e.g. `0.10` = 10%).
#[must_use]
pub fn diff_summaries(base: &Summary, new: &Summary, threshold: f64) -> DiffReport {
    let mut text = format!(
        "{:<28} {:>10} {:>10} {:>12} {:>12} {:>8}\n",
        "span", "count A", "count B", "cost A", "cost B", "ratio"
    );
    let mut regressed = false;
    let mut names: Vec<&str> = base
        .spans
        .iter()
        .chain(new.spans.iter())
        .map(|s| s.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let zero = SpanStat {
            name: name.to_string(),
            count: 0,
            cost_total: 0.0,
            seq_extent: 0,
            wall_total_ns: 0,
        };
        let a = base.get(name).unwrap_or(&zero);
        let b = new.get(name).unwrap_or(&zero);
        let (cost_ratio, cost_bad) = ratio_flag(a.cost_total, b.cost_total, threshold);
        #[allow(clippy::cast_precision_loss)]
        let (wall_ratio, wall_bad) = ratio_flag(
            a.wall_total_ns as f64,
            b.wall_total_ns as f64,
            threshold,
        );
        let bad = cost_bad || wall_bad;
        regressed |= bad;
        let shown_ratio = if a.wall_total_ns > 0 { wall_ratio } else { cost_ratio };
        text.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>12.3} {:>12.3} {:>7.2}x{}\n",
            name,
            a.count,
            b.count,
            a.cost_total,
            b.cost_total,
            shown_ratio,
            if bad { "  <-- REGRESSED" } else { "" }
        ));
    }
    DiffReport { text, regressed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_reads_back_header_events_and_metrics() {
        let text = concat!(
            "{\"schema\":\"pwu-trace-v1\",\"plane\":\"full\"}\n",
            "{\"seq\":0,\"ph\":\"B\",\"name\":\"stage\",\"args\":{\"cost\":2.5},\"wall_ns\":100}\n",
            "{\"seq\":1,\"ph\":\"I\",\"name\":\"mark\"}\n",
            "{\"seq\":2,\"ph\":\"E\",\"name\":\"stage\",\"wall_ns\":350}\n",
            "{\"metric\":\"m.count\",\"plane\":\"deterministic\",\"value\":9}\n",
        );
        let s = summarize(text).expect("must parse");
        assert_eq!(s.events, 3);
        let stage = s.get("stage").unwrap();
        assert_eq!(stage.count, 1);
        assert!((stage.cost_total - 2.5).abs() < 1e-12);
        assert_eq!(stage.seq_extent, 2);
        assert_eq!(stage.wall_total_ns, 250);
        assert_eq!(s.metrics, vec![(
            "m.count".to_string(),
            "deterministic".to_string(),
            "9".to_string()
        )]);
        assert!(summarize("not a trace\n").is_none());
    }
}
