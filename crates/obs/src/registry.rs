//! The unified metrics registry: named counters and gauges shared by every
//! crate in the workspace, snapshotted into trace exports and the serve
//! `stats` verb.
//!
//! Counters are plain `u64` atomic adds — commutative and associative, so
//! their *totals* are schedule-invariant whenever each unit of work
//! contributes a deterministic amount. Metrics registered on the
//! **deterministic** plane assert exactly that and are included in the
//! deterministic trace export (and thus byte-compared by the determinism
//! gate); **diagnostic** metrics (e.g. cache hit/miss tallies, whose
//! increment counts depend on scheduling) are excluded from it but still
//! appear in full exports and `stats`.
//!
//! Gauges hold an `f64` and are set-only (last write wins): float adds do
//! not associate, so an accumulating float metric would not be
//! schedule-invariant. Set gauges from sequential code.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Which export plane a metric belongs to (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plane {
    /// Schedule-invariant totals: safe to byte-compare across widths.
    Deterministic,
    /// Scheduling-dependent tallies: monitoring only.
    Diagnostic,
}

impl Plane {
    /// Stable lowercase token used in exports.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Plane::Deterministic => "deterministic",
            Plane::Diagnostic => "diagnostic",
        }
    }
}

#[derive(Debug)]
struct MetricInner {
    /// Counter value, or an `f64` bit pattern for gauges.
    bits: AtomicU64,
    plane: Plane,
    is_gauge: bool,
}

/// A monotonically increasing `u64` metric. Clone-cheap handle; cache it
/// in hot structs so the hot path never touches the registry map.
#[derive(Debug, Clone)]
pub struct Counter(Arc<MetricInner>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.bits.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.bits.load(Ordering::Relaxed)
    }
}

/// A set-only `f64` metric (last write wins).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<MetricInner>);

impl Gauge {
    /// Sets the gauge value.
    pub fn set(&self, v: f64) {
        self.0.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

/// A metric's value in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Count(u64),
    /// Gauge value.
    Value(f64),
}

/// One registered metric at snapshot time.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Registered name (dotted, e.g. `measure.retries`).
    pub name: &'static str,
    /// Export plane.
    pub plane: Plane,
    /// Value at snapshot time.
    pub value: MetricValue,
}

static REGISTRY: Mutex<BTreeMap<&'static str, Arc<MetricInner>>> = Mutex::new(BTreeMap::new());

fn register(name: &'static str, plane: Plane, is_gauge: bool) -> Arc<MetricInner> {
    let mut map = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(name).or_insert_with(|| {
        Arc::new(MetricInner {
            bits: AtomicU64::new(if is_gauge { 0f64.to_bits() } else { 0 }),
            plane,
            is_gauge,
        })
    }))
}

/// Registers (or fetches) a deterministic-plane counter.
///
/// Only use this plane when each unit of work adds a schedule-invariant
/// amount, so the total is identical at every width and deal order.
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    Counter(register(name, Plane::Deterministic, false))
}

/// Registers (or fetches) a diagnostic-plane counter (scheduling-dependent
/// tallies such as cache hit/miss counts).
#[must_use]
pub fn counter_diag(name: &'static str) -> Counter {
    Counter(register(name, Plane::Diagnostic, false))
}

/// Registers (or fetches) a deterministic-plane gauge.
#[must_use]
pub fn gauge(name: &'static str) -> Gauge {
    Gauge(register(name, Plane::Deterministic, true))
}

/// Snapshot of every registered metric, sorted by name.
#[must_use]
pub fn snapshot() -> Vec<Metric> {
    let map = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    map.iter()
        .map(|(name, inner)| Metric {
            name,
            plane: inner.plane,
            value: if inner.is_gauge {
                MetricValue::Value(f64::from_bits(inner.bits.load(Ordering::Relaxed)))
            } else {
                MetricValue::Count(inner.bits.load(Ordering::Relaxed))
            },
        })
        .collect()
}

/// Zeroes every registered metric (registrations and cached handles stay
/// valid). Test/gate helper for comparing runs from a clean slate.
pub fn reset_metrics() {
    let map = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    for inner in map.values() {
        let zero = if inner.is_gauge { 0f64.to_bits() } else { 0 };
        inner.bits.store(zero, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_reset_preserves_registration() {
        let _g = crate::tests::obs_guard();
        let a = counter("registry.test.shared");
        let b = counter("registry.test.shared");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        reset_metrics();
        assert_eq!(b.get(), 0, "reset zeroes but keeps the handle live");
        a.incr();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn snapshot_is_name_sorted_and_typed() {
        let _g = crate::tests::obs_guard();
        counter("registry.test.zz").add(1);
        gauge("registry.test.aa").set(1.25);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        let aa = snap.iter().find(|m| m.name == "registry.test.aa").unwrap();
        assert!(matches!(aa.value, MetricValue::Value(v) if (v - 1.25).abs() < 1e-12));
    }
}
