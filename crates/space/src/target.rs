//! The interface between parameter spaces and the programs being tuned.
//!
//! A [`TuningTarget`] is "a program you can run with a configuration and
//! time": the SPAPT kernel simulators, the *kripke* and *hypre* application
//! models, and any synthetic test function all implement it. Active learning
//! (Algorithm 1 in the paper) only ever talks to this trait.

use crate::config::Configuration;
use crate::space::ParamSpace;

use pwu_stats::Xoshiro256PlusPlus;

/// Why a measurement attempt produced no usable reading.
///
/// The taxonomy mirrors what a real autotuning harness sees when it runs
/// Orio-transformed kernels: the transformed source can fail to compile,
/// the binary can crash, or the timer can report garbage. The distinction
/// that matters downstream is *permanence*: a compile failure is a property
/// of the configuration and retrying cannot fix it, while crashes and bad
/// readings are transient system events worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The transformed code did not compile. Permanent: deterministic per
    /// configuration, so the configuration should be quarantined.
    Compile,
    /// The binary crashed (segfault, abort, OOM kill). Transient.
    Crash,
    /// The timer reported a non-finite or otherwise unusable value.
    /// Transient.
    BadReading,
    /// The run exceeded the harness timeout and was killed. Transient
    /// (system load can push a borderline run over the limit).
    ///
    /// Measurement reports timeouts through [`MeasureOutcome::Timeout`];
    /// this variant exists so aggregated failure reports
    /// ([`MeasureOutcome::classify`]) can name the cause with one type.
    Timeout,
}

impl FailureKind {
    /// True when retrying the same configuration cannot succeed.
    #[must_use]
    pub fn is_permanent(self) -> bool {
        matches!(self, FailureKind::Compile)
    }

    /// Short stable label (metrics, checkpoint format).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Compile => "compile",
            FailureKind::Crash => "crash",
            FailureKind::BadReading => "bad-reading",
            FailureKind::Timeout => "timeout",
        }
    }

    /// Parses a [`FailureKind::label`] back (checkpoint format).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "compile" => Some(FailureKind::Compile),
            "crash" => Some(FailureKind::Crash),
            "bad-reading" => Some(FailureKind::BadReading),
            "timeout" => Some(FailureKind::Timeout),
            _ => None,
        }
    }
}

/// The result of one fallible measurement attempt.
///
/// [`TuningTarget::try_measure`] returns this instead of a bare time so the
/// annotator can distinguish a clean reading from the ways a real run dies.
/// Failed attempts still carry the wall-clock `cost` they burned (compile
/// time, partial run before the crash, or the full timeout budget) so the
/// experiment's cumulative-cost accounting can charge for them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasureOutcome {
    /// A completed run with its measured time in seconds.
    Ok(f64),
    /// The run produced no reading.
    Failed {
        /// What went wrong.
        kind: FailureKind,
        /// Wall-clock seconds burned by the failed attempt.
        cost: f64,
    },
    /// The run exceeded the harness timeout and was killed.
    Timeout {
        /// Seconds spent before the kill (the timeout budget).
        cost: f64,
    },
}

impl MeasureOutcome {
    /// The reading, if the attempt succeeded.
    #[must_use]
    pub fn ok(self) -> Option<f64> {
        match self {
            MeasureOutcome::Ok(t) => Some(t),
            _ => None,
        }
    }

    /// Wall-clock seconds the attempt cost *beyond* any returned reading
    /// (zero for a successful run, the wasted time otherwise).
    #[must_use]
    pub fn wasted_cost(self) -> f64 {
        match self {
            MeasureOutcome::Ok(_) => 0.0,
            MeasureOutcome::Failed { cost, .. } | MeasureOutcome::Timeout { cost } => cost,
        }
    }

    /// The failure classification, `None` for a successful reading.
    #[must_use]
    pub fn classify(self) -> Option<FailureKind> {
        match self {
            MeasureOutcome::Ok(_) => None,
            MeasureOutcome::Failed { kind, .. } => Some(kind),
            MeasureOutcome::Timeout { .. } => Some(FailureKind::Timeout),
        }
    }
}

/// Static-analysis verdict on one configuration of a target.
///
/// Produced by [`TuningTarget::lint_config`]; the active-learning pool and
/// the model-based tuner use it to exclude configurations whose
/// transformations a legality analysis has proven unsafe, and to count
/// configurations that are safe but suspicious (e.g. a vectorization request
/// the compiler would have to ignore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConfigLegality {
    /// No finding: the configuration is safe to evaluate and search.
    Legal,
    /// Safe to evaluate, but a Warn-level finding applies (the simulated
    /// compiler would decline part of the transformation).
    Flagged,
    /// An Error-level finding: the transformation would be rejected (or
    /// would miscompile) on a real stack; searchers should exclude it.
    Illegal,
}

/// Tally of [`ConfigLegality`] verdicts over a candidate pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolLintCounts {
    /// Configurations with no finding.
    pub legal: usize,
    /// Configurations with Warn-level findings (kept, but counted).
    pub flagged: usize,
    /// Configurations excluded as illegal.
    pub illegal: usize,
}

impl PoolLintCounts {
    /// Classifies every configuration in `cfgs` against `target`.
    pub fn tally<'a>(
        target: &dyn TuningTarget,
        cfgs: impl IntoIterator<Item = &'a Configuration>,
    ) -> Self {
        let mut counts = Self::default();
        for cfg in cfgs {
            match target.lint_config(cfg) {
                ConfigLegality::Legal => counts.legal += 1,
                ConfigLegality::Flagged => counts.flagged += 1,
                ConfigLegality::Illegal => counts.illegal += 1,
            }
        }
        counts
    }

    /// Total number of classified configurations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.legal + self.flagged + self.illegal
    }
}

/// A tunable program with a measurable execution time.
pub trait TuningTarget: Send + Sync {
    /// Benchmark name (e.g. `"adi"`, `"kripke"`).
    fn name(&self) -> &str;

    /// The parameter space of the target.
    fn space(&self) -> &ParamSpace;

    /// Noise-free execution time of a configuration, in seconds.
    ///
    /// This is the "ground truth" surface the simulator defines; real
    /// measurements scatter around it.
    fn ideal_time(&self, cfg: &Configuration) -> f64;

    /// Noise-free execution times for a batch of configurations.
    ///
    /// Element `i` is exactly `self.ideal_time(&cfgs[i])` — implementations
    /// may parallelize or memoize, but the returned bits must match the
    /// one-at-a-time path. Experiment drivers use this to pre-warm a
    /// target's evaluation cache for configurations that will be measured
    /// many times across strategies and seeds.
    fn ideal_times(&self, cfgs: &[Configuration]) -> Vec<f64> {
        cfgs.iter().map(|cfg| self.ideal_time(cfg)).collect()
    }

    /// One noisy wall-clock measurement, in seconds.
    ///
    /// The default adds no noise; simulators override this with their
    /// measurement-noise model.
    fn measure(&self, cfg: &Configuration, _rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.ideal_time(cfg)
    }

    /// The mean of `repeats` noisy measurements — the paper's protocol
    /// (35 repeats for kernels) for suppressing system noise.
    fn measure_averaged(
        &self,
        cfg: &Configuration,
        repeats: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> f64 {
        assert!(repeats > 0, "need at least one repeat");
        (0..repeats).map(|_| self.measure(cfg, rng)).sum::<f64>() / repeats as f64
    }

    /// One fallible wall-clock measurement attempt.
    ///
    /// The default wraps the infallible [`TuningTarget::measure`] — a
    /// simulator with no fault model never fails, and the default consumes
    /// exactly the same RNG stream as `measure`, so targets without faults
    /// behave bit-identically through either path. Targets with a fault
    /// model (see `pwu-spapt`'s `FaultModel`) override this to inject
    /// compile failures, crashes, timeouts and garbage readings.
    fn try_measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> MeasureOutcome {
        MeasureOutcome::Ok(self.measure(cfg, rng))
    }

    /// Static legality verdict for one configuration.
    ///
    /// The default says every configuration is [`ConfigLegality::Legal`];
    /// targets backed by a dependence analysis (the SPAPT kernel simulators
    /// with an attached legality mask) override this so the tuning loop can
    /// exclude provably illegal transformation requests before spending
    /// measurements on them.
    fn lint_config(&self, _cfg: &Configuration) -> ConfigLegality {
        ConfigLegality::Legal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    struct Quadratic {
        space: ParamSpace,
    }

    impl TuningTarget for Quadratic {
        fn name(&self) -> &str {
            "quadratic"
        }

        fn space(&self) -> &ParamSpace {
            &self.space
        }

        fn ideal_time(&self, cfg: &Configuration) -> f64 {
            let x = f64::from(cfg.level(0));
            (x - 3.0) * (x - 3.0) + 1.0
        }
    }

    #[test]
    fn default_measure_is_noise_free() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal(
                    "x",
                    (0..8).map(f64::from).collect::<Vec<_>>(),
                )],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let cfg = Configuration::new(vec![3]);
        assert_eq!(t.measure(&cfg, &mut rng), 1.0);
        assert_eq!(t.measure_averaged(&cfg, 5, &mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal(
                    "x",
                    (0..8).map(f64::from).collect::<Vec<_>>(),
                )],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let _ = t.measure_averaged(&Configuration::new(vec![0]), 0, &mut rng);
    }

    #[test]
    fn default_try_measure_wraps_measure() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal(
                    "x",
                    (0..8).map(f64::from).collect::<Vec<_>>(),
                )],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let cfg = Configuration::new(vec![3]);
        let out = t.try_measure(&cfg, &mut rng);
        assert_eq!(out, MeasureOutcome::Ok(1.0));
        assert_eq!(out.ok(), Some(1.0));
        assert_eq!(out.wasted_cost(), 0.0);
    }

    #[test]
    fn failure_taxonomy_permanence_and_costs() {
        assert!(FailureKind::Compile.is_permanent());
        assert!(!FailureKind::Crash.is_permanent());
        assert!(!FailureKind::BadReading.is_permanent());
        assert!(!FailureKind::Timeout.is_permanent());
        let failed = MeasureOutcome::Failed {
            kind: FailureKind::Crash,
            cost: 0.7,
        };
        assert_eq!(failed.ok(), None);
        assert_eq!(failed.wasted_cost(), 0.7);
        assert_eq!(failed.classify(), Some(FailureKind::Crash));
        assert_eq!(MeasureOutcome::Timeout { cost: 5.0 }.wasted_cost(), 5.0);
        assert_eq!(
            MeasureOutcome::Timeout { cost: 5.0 }.classify(),
            Some(FailureKind::Timeout)
        );
        assert_eq!(MeasureOutcome::Ok(1.0).classify(), None);
        for kind in [
            FailureKind::Compile,
            FailureKind::Crash,
            FailureKind::BadReading,
            FailureKind::Timeout,
        ] {
            assert_eq!(FailureKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FailureKind::from_label("bogus"), None);
    }

    #[test]
    fn default_lint_is_legal_and_counts_tally() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal(
                    "x",
                    (0..8).map(f64::from).collect::<Vec<_>>(),
                )],
            ),
        };
        let cfgs: Vec<Configuration> = (0..4).map(|i| Configuration::new(vec![i])).collect();
        for c in &cfgs {
            assert_eq!(t.lint_config(c), ConfigLegality::Legal);
        }
        let counts = PoolLintCounts::tally(&t, &cfgs);
        assert_eq!(counts.legal, 4);
        assert_eq!(counts.flagged + counts.illegal, 0);
        assert_eq!(counts.total(), 4);
        // Severity is ordered for max-style folds.
        assert!(ConfigLegality::Legal < ConfigLegality::Flagged);
        assert!(ConfigLegality::Flagged < ConfigLegality::Illegal);
    }
}
