//! The interface between parameter spaces and the programs being tuned.
//!
//! A [`TuningTarget`] is "a program you can run with a configuration and
//! time": the SPAPT kernel simulators, the *kripke* and *hypre* application
//! models, and any synthetic test function all implement it. Active learning
//! (Algorithm 1 in the paper) only ever talks to this trait.

use crate::config::Configuration;
use crate::space::ParamSpace;

use pwu_stats::Xoshiro256PlusPlus;

/// Static-analysis verdict on one configuration of a target.
///
/// Produced by [`TuningTarget::lint_config`]; the active-learning pool and
/// the model-based tuner use it to exclude configurations whose
/// transformations a legality analysis has proven unsafe, and to count
/// configurations that are safe but suspicious (e.g. a vectorization request
/// the compiler would have to ignore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConfigLegality {
    /// No finding: the configuration is safe to evaluate and search.
    Legal,
    /// Safe to evaluate, but a Warn-level finding applies (the simulated
    /// compiler would decline part of the transformation).
    Flagged,
    /// An Error-level finding: the transformation would be rejected (or
    /// would miscompile) on a real stack; searchers should exclude it.
    Illegal,
}

/// Tally of [`ConfigLegality`] verdicts over a candidate pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolLintCounts {
    /// Configurations with no finding.
    pub legal: usize,
    /// Configurations with Warn-level findings (kept, but counted).
    pub flagged: usize,
    /// Configurations excluded as illegal.
    pub illegal: usize,
}

impl PoolLintCounts {
    /// Classifies every configuration in `cfgs` against `target`.
    pub fn tally<'a>(
        target: &dyn TuningTarget,
        cfgs: impl IntoIterator<Item = &'a Configuration>,
    ) -> Self {
        let mut counts = Self::default();
        for cfg in cfgs {
            match target.lint_config(cfg) {
                ConfigLegality::Legal => counts.legal += 1,
                ConfigLegality::Flagged => counts.flagged += 1,
                ConfigLegality::Illegal => counts.illegal += 1,
            }
        }
        counts
    }

    /// Total number of classified configurations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.legal + self.flagged + self.illegal
    }
}

/// A tunable program with a measurable execution time.
pub trait TuningTarget: Send + Sync {
    /// Benchmark name (e.g. `"adi"`, `"kripke"`).
    fn name(&self) -> &str;

    /// The parameter space of the target.
    fn space(&self) -> &ParamSpace;

    /// Noise-free execution time of a configuration, in seconds.
    ///
    /// This is the "ground truth" surface the simulator defines; real
    /// measurements scatter around it.
    fn ideal_time(&self, cfg: &Configuration) -> f64;

    /// One noisy wall-clock measurement, in seconds.
    ///
    /// The default adds no noise; simulators override this with their
    /// measurement-noise model.
    fn measure(&self, cfg: &Configuration, _rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.ideal_time(cfg)
    }

    /// The mean of `repeats` noisy measurements — the paper's protocol
    /// (35 repeats for kernels) for suppressing system noise.
    fn measure_averaged(
        &self,
        cfg: &Configuration,
        repeats: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> f64 {
        assert!(repeats > 0, "need at least one repeat");
        (0..repeats).map(|_| self.measure(cfg, rng)).sum::<f64>() / repeats as f64
    }

    /// Static legality verdict for one configuration.
    ///
    /// The default says every configuration is [`ConfigLegality::Legal`];
    /// targets backed by a dependence analysis (the SPAPT kernel simulators
    /// with an attached legality mask) override this so the tuning loop can
    /// exclude provably illegal transformation requests before spending
    /// measurements on them.
    fn lint_config(&self, _cfg: &Configuration) -> ConfigLegality {
        ConfigLegality::Legal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    struct Quadratic {
        space: ParamSpace,
    }

    impl TuningTarget for Quadratic {
        fn name(&self) -> &str {
            "quadratic"
        }

        fn space(&self) -> &ParamSpace {
            &self.space
        }

        fn ideal_time(&self, cfg: &Configuration) -> f64 {
            let x = f64::from(cfg.level(0));
            (x - 3.0) * (x - 3.0) + 1.0
        }
    }

    #[test]
    fn default_measure_is_noise_free() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal("x", (0..8).map(f64::from).collect::<Vec<_>>())],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let cfg = Configuration::new(vec![3]);
        assert_eq!(t.measure(&cfg, &mut rng), 1.0);
        assert_eq!(t.measure_averaged(&cfg, 5, &mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal("x", (0..8).map(f64::from).collect::<Vec<_>>())],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let _ = t.measure_averaged(&Configuration::new(vec![0]), 0, &mut rng);
    }

    #[test]
    fn default_lint_is_legal_and_counts_tally() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal("x", (0..8).map(f64::from).collect::<Vec<_>>())],
            ),
        };
        let cfgs: Vec<Configuration> = (0..4).map(|i| Configuration::new(vec![i])).collect();
        for c in &cfgs {
            assert_eq!(t.lint_config(c), ConfigLegality::Legal);
        }
        let counts = PoolLintCounts::tally(&t, &cfgs);
        assert_eq!(counts.legal, 4);
        assert_eq!(counts.flagged + counts.illegal, 0);
        assert_eq!(counts.total(), 4);
        // Severity is ordered for max-style folds.
        assert!(ConfigLegality::Legal < ConfigLegality::Flagged);
        assert!(ConfigLegality::Flagged < ConfigLegality::Illegal);
    }
}
