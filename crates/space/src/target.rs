//! The interface between parameter spaces and the programs being tuned.
//!
//! A [`TuningTarget`] is "a program you can run with a configuration and
//! time": the SPAPT kernel simulators, the *kripke* and *hypre* application
//! models, and any synthetic test function all implement it. Active learning
//! (Algorithm 1 in the paper) only ever talks to this trait.

use crate::config::Configuration;
use crate::space::ParamSpace;

use pwu_stats::Xoshiro256PlusPlus;

/// A tunable program with a measurable execution time.
pub trait TuningTarget: Send + Sync {
    /// Benchmark name (e.g. `"adi"`, `"kripke"`).
    fn name(&self) -> &str;

    /// The parameter space of the target.
    fn space(&self) -> &ParamSpace;

    /// Noise-free execution time of a configuration, in seconds.
    ///
    /// This is the "ground truth" surface the simulator defines; real
    /// measurements scatter around it.
    fn ideal_time(&self, cfg: &Configuration) -> f64;

    /// One noisy wall-clock measurement, in seconds.
    ///
    /// The default adds no noise; simulators override this with their
    /// measurement-noise model.
    fn measure(&self, cfg: &Configuration, _rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.ideal_time(cfg)
    }

    /// The mean of `repeats` noisy measurements — the paper's protocol
    /// (35 repeats for kernels) for suppressing system noise.
    fn measure_averaged(
        &self,
        cfg: &Configuration,
        repeats: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> f64 {
        assert!(repeats > 0, "need at least one repeat");
        (0..repeats).map(|_| self.measure(cfg, rng)).sum::<f64>() / repeats as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    struct Quadratic {
        space: ParamSpace,
    }

    impl TuningTarget for Quadratic {
        fn name(&self) -> &str {
            "quadratic"
        }

        fn space(&self) -> &ParamSpace {
            &self.space
        }

        fn ideal_time(&self, cfg: &Configuration) -> f64 {
            let x = f64::from(cfg.level(0));
            (x - 3.0) * (x - 3.0) + 1.0
        }
    }

    #[test]
    fn default_measure_is_noise_free() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal("x", (0..8).map(f64::from).collect::<Vec<_>>())],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let cfg = Configuration::new(vec![3]);
        assert_eq!(t.measure(&cfg, &mut rng), 1.0);
        assert_eq!(t.measure_averaged(&cfg, 5, &mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let t = Quadratic {
            space: ParamSpace::new(
                "q",
                vec![Param::ordinal("x", (0..8).map(f64::from).collect::<Vec<_>>())],
            ),
        };
        let mut rng = Xoshiro256PlusPlus::new(0);
        let _ = t.measure_averaged(&Configuration::new(vec![0]), 0, &mut rng);
    }
}
