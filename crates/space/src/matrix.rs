//! Flat column-major feature storage.
//!
//! The forest's fit hot path scans one feature column at a time over the
//! rows of a node; a row-major `Vec<Vec<f64>>` makes every such scan a
//! pointer chase through `n` separate heap allocations. [`FeatureMatrix`]
//! stores the encoded features as a structure of arrays — one contiguous
//! `Vec<f64>` per feature column — so column scans are sequential memory
//! traffic and the whole training set lives in `d` allocations instead of
//! `n`. Rows are still addressable (`get`, [`FeatureMatrix::row`]) for the
//! predict path, which walks one row across columns.
//!
//! The matrix is growable ([`FeatureMatrix::push_row`]) and supports the
//! pool's removal pattern ([`FeatureMatrix::swap_remove_row`]), keeping it a
//! drop-in backing store for both the training set and the candidate pool.

/// A dense `n_rows × n_cols` feature matrix stored column-major.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    cols: Vec<Vec<f64>>,
    n_rows: usize,
}

impl FeatureMatrix {
    /// Creates an empty matrix with `n_cols` feature columns.
    #[must_use]
    pub fn new(n_cols: usize) -> Self {
        Self {
            cols: vec![Vec::new(); n_cols],
            n_rows: 0,
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// `n_cols` is explicit so an empty row set still carries its width.
    ///
    /// # Panics
    /// Panics if any row's length differs from `n_cols`.
    #[must_use]
    pub fn from_rows(n_cols: usize, rows: &[Vec<f64>]) -> Self {
        let mut m = Self {
            cols: vec![Vec::with_capacity(rows.len()); n_cols],
            n_rows: 0,
        };
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// True when the matrix holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// One contiguous feature column, indexable by row.
    ///
    /// # Panics
    /// Panics if `col` is out of range.
    #[must_use]
    pub fn column(&self, col: usize) -> &[f64] {
        &self.cols[col]
    }

    /// The entry at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.cols[col][row]
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row` does not have exactly `n_cols` entries.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols.len(), "row width mismatch");
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.n_rows += 1;
    }

    /// Removes row `i` by swapping the last row into its place, returning
    /// the removed row. O(`n_cols`).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn swap_remove_row(&mut self, i: usize) -> Vec<f64> {
        assert!(i < self.n_rows, "row {i} out of range ({})", self.n_rows);
        let row = self.cols.iter_mut().map(|c| c.swap_remove(i)).collect();
        self.n_rows -= 1;
        row
    }

    /// Copies row `i` out as a contiguous slice-backed vector.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.n_rows, "row {i} out of range ({})", self.n_rows);
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Keeps only the rows whose `kept` flag is true, preserving order, and
    /// returns how many rows were removed.
    ///
    /// # Panics
    /// Panics if `kept` does not have exactly `n_rows` entries.
    pub fn retain_rows(&mut self, kept: &[bool]) -> usize {
        assert_eq!(kept.len(), self.n_rows, "keep-mask length mismatch");
        for col in &mut self.cols {
            let mut row = 0;
            col.retain(|_| {
                let keep = kept[row];
                row += 1;
                keep
            });
        }
        let removed = kept.iter().filter(|&&k| !k).count();
        self.n_rows -= removed;
        removed
    }

    /// Converts back to row-major form (diagnostics and tests).
    #[must_use]
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_rows(2, &[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]])
    }

    #[test]
    fn from_rows_round_trips() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.column(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(m.get(1, 1), 20.0);
        assert_eq!(m.row(2), vec![3.0, 30.0]);
        assert_eq!(
            m.to_rows(),
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]
        );
    }

    #[test]
    fn push_and_swap_remove_mirror_vec_semantics() {
        let mut m = FeatureMatrix::new(2);
        assert!(m.is_empty());
        m.push_row(&[1.0, 10.0]);
        m.push_row(&[2.0, 20.0]);
        m.push_row(&[3.0, 30.0]);
        // swap_remove(0): last row moves into slot 0, like Vec::swap_remove.
        let removed = m.swap_remove_row(0);
        assert_eq!(removed, vec![1.0, 10.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(0), vec![3.0, 30.0]);
        assert_eq!(m.row(1), vec![2.0, 20.0]);
    }

    #[test]
    fn retain_rows_preserves_order() {
        let mut m = sample();
        let removed = m.retain_rows(&[true, false, true]);
        assert_eq!(removed, 1);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.to_rows(), vec![vec![1.0, 10.0], vec![3.0, 30.0]]);
    }

    #[test]
    fn empty_matrix_keeps_its_width() {
        let m = FeatureMatrix::from_rows(4, &[]);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.n_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_width_is_rejected() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_is_rejected() {
        let _ = sample().row(3);
    }
}
