//! Parameter spaces for empirical performance modeling.
//!
//! A *parameter space* is the cartesian product of a handful of tunable
//! parameters — tile sizes, unroll factors, solver ids, process counts —
//! each with a small finite domain. SPAPT-style spaces have between 8 and 38
//! parameters and 10¹⁰…10³⁰ points, so the space is never enumerated; the
//! paper's protocol draws a 10 000-point uniform surrogate sample instead
//! (pool + test set), which [`ParamSpace::sample_distinct`] provides.
//!
//! Modules:
//! - [`param`] — parameter definitions ([`Param`], [`Domain`]) and values
//! - [`config`] — a [`Configuration`] (one point of the space) as level indices
//! - [`space`] — [`ParamSpace`]: cardinality, indexing, uniform sampling
//! - [`encode`] — feature encoding of configurations for learning
//! - [`matrix`] — flat column-major feature storage ([`FeatureMatrix`])
//! - [`pool`] — labeled/unlabeled sample pools used by active learning

pub mod config;
pub mod encode;
pub mod matrix;
pub mod param;
pub mod pool;
pub mod space;
pub mod target;

pub use config::Configuration;
pub use encode::{FeatureKind, FeatureSchema};
pub use matrix::FeatureMatrix;
pub use param::{Domain, Param, Value};
pub use pool::{LabeledSet, Pool};
pub use space::ParamSpace;
pub use target::{ConfigLegality, FailureKind, MeasureOutcome, PoolLintCounts, TuningTarget};
