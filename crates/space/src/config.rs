//! Configurations: single points of a parameter space.

use std::fmt;

/// One point of a [`crate::ParamSpace`], stored as per-parameter level
/// indices.
///
/// Levels are indices into each parameter's domain, which keeps a
/// configuration at 4 bytes per parameter and makes hashing/equality exact
/// (no float comparisons).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    levels: Vec<u32>,
}

impl Configuration {
    /// Creates a configuration from raw level indices.
    #[must_use]
    pub fn new(levels: Vec<u32>) -> Self {
        Self { levels }
    }

    /// Level indices, one per parameter.
    #[must_use]
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Level of the parameter at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn level(&self, i: usize) -> u32 {
        self.levels[i]
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the configuration has no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Returns a copy with the parameter at `i` set to `level`.
    #[must_use]
    pub fn with_level(&self, i: usize, level: u32) -> Self {
        let mut levels = self.levels.clone();
        levels[i] = level;
        Self { levels }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Configuration::new(vec![0, 3, 1]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.level(1), 3);
        assert_eq!(c.levels(), &[0, 3, 1]);
        assert!(!c.is_empty());
    }

    #[test]
    fn with_level_is_nondestructive() {
        let c = Configuration::new(vec![0, 0]);
        let d = c.with_level(1, 5);
        assert_eq!(c.level(1), 0);
        assert_eq!(d.level(1), 5);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Configuration::new(vec![1, 2, 3]).to_string(), "[1,2,3]");
    }

    #[test]
    fn hash_and_eq_are_structural() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Configuration::new(vec![1, 2]));
        assert!(set.contains(&Configuration::new(vec![1, 2])));
        assert!(!set.contains(&Configuration::new(vec![2, 1])));
    }
}
