//! Parameter definitions.

use std::fmt;

use pwu_stats::InvalidInput;

/// The domain of one tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Ordered numeric levels, e.g. tile sizes `[1, 16, 32, 64, 128]`.
    ///
    /// The values carry magnitude information, so they are encoded as a
    /// numeric feature.
    Ordinal(Vec<f64>),
    /// Unordered categories, e.g. kripke's `layout ∈ {DGZ, DZG, ...}`.
    ///
    /// Encoded as a categorical feature; the forest splits on category
    /// subsets, not on an artificial ordering.
    Categorical(Vec<String>),
    /// A boolean switch, e.g. SPAPT's `scalarreplace`.
    Bool,
}

impl Domain {
    /// Number of levels in the domain.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Domain::Ordinal(vs) => vs.len(),
            Domain::Categorical(cs) => cs.len(),
            Domain::Bool => 2,
        }
    }

    /// True when the domain has no levels (invalid for spaces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at a given level index.
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn value(&self, level: u32) -> Value {
        let level = level as usize;
        match self {
            Domain::Ordinal(vs) => Value::Number(vs[level]),
            Domain::Categorical(cs) => Value::Category(level, cs[level].clone()),
            Domain::Bool => {
                assert!(level < 2, "bool level {level} out of range");
                Value::Flag(level == 1)
            }
        }
    }
}

/// A concrete value taken by a parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric level of an ordinal parameter.
    Number(f64),
    /// Category index and label of a categorical parameter.
    Category(usize, String),
    /// Boolean switch state.
    Flag(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Category(_, label) => write!(f, "{label}"),
            Value::Flag(b) => write!(f, "{b}"),
        }
    }
}

/// One named tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    name: String,
    domain: Domain,
}

impl Param {
    /// Creates a parameter, rejecting malformed domains.
    ///
    /// # Errors
    /// Returns [`InvalidInput`] if the domain is empty or, for ordinal
    /// domains, contains non-finite or duplicate values.
    pub fn try_new(name: impl Into<String>, domain: Domain) -> Result<Self, InvalidInput> {
        let name = name.into();
        let reject = |msg: String| Err(InvalidInput::new("parameter", msg));
        if domain.is_empty() {
            return reject(format!("parameter {name} has an empty domain"));
        }
        if let Domain::Ordinal(vs) = &domain {
            if !vs.iter().all(|v| v.is_finite()) {
                return reject(format!("parameter {name} has non-finite ordinal values"));
            }
            for (i, v) in vs.iter().enumerate() {
                if vs[..i].contains(v) {
                    return reject(format!("parameter {name} has duplicate ordinal value {v}"));
                }
            }
        }
        if let Domain::Categorical(cs) = &domain {
            for (i, c) in cs.iter().enumerate() {
                if cs[..i].contains(c) {
                    return reject(format!("parameter {name} has duplicate category {c}"));
                }
            }
        }
        Ok(Self { name, domain })
    }

    /// Creates a parameter.
    ///
    /// # Panics
    /// Panics if the domain is empty or, for ordinal domains, contains
    /// non-finite or duplicate values. Use [`Param::try_new`] to handle
    /// malformed user input without panicking.
    #[must_use]
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        match Self::try_new(name, domain) {
            Ok(p) => p,
            Err(e) => panic!("{}", e.message),
        }
    }

    /// Convenience constructor for an ordinal parameter.
    #[must_use]
    pub fn ordinal(name: impl Into<String>, values: impl Into<Vec<f64>>) -> Self {
        Self::new(name, Domain::Ordinal(values.into()))
    }

    /// Convenience constructor for a categorical parameter.
    #[must_use]
    pub fn categorical<S: Into<String>>(
        name: impl Into<String>,
        labels: impl IntoIterator<Item = S>,
    ) -> Self {
        Self::new(
            name,
            Domain::Categorical(labels.into_iter().map(Into::into).collect()),
        )
    }

    /// Convenience constructor for a boolean parameter.
    #[must_use]
    pub fn boolean(name: impl Into<String>) -> Self {
        Self::new(name, Domain::Bool)
    }

    /// Parameter name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter domain.
    #[must_use]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of levels.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.domain.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_domain() {
        assert_eq!(Param::ordinal("t", vec![1.0, 2.0, 4.0]).arity(), 3);
        assert_eq!(Param::categorical("c", ["a", "b"]).arity(), 2);
        assert_eq!(Param::boolean("v").arity(), 2);
    }

    #[test]
    fn values_decode_levels() {
        let p = Param::ordinal("t", vec![1.0, 16.0]);
        assert_eq!(p.domain().value(1), Value::Number(16.0));
        let c = Param::categorical("l", ["DGZ", "DZG"]);
        assert_eq!(c.domain().value(0), Value::Category(0, "DGZ".into()));
        let b = Param::boolean("v");
        assert_eq!(b.domain().value(1), Value::Flag(true));
        assert_eq!(b.domain().value(0), Value::Flag(false));
    }

    #[test]
    fn display_formats_values() {
        assert_eq!(Value::Number(16.0).to_string(), "16");
        assert_eq!(Value::Number(1.5).to_string(), "1.5");
        assert_eq!(Value::Category(0, "pmis".into()).to_string(), "pmis");
        assert_eq!(Value::Flag(true).to_string(), "true");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_rejected() {
        let _ = Param::ordinal("t", vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ordinal_rejected() {
        let _ = Param::ordinal("t", vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_category_rejected() {
        let _ = Param::categorical("c", ["x", "x"]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(Param::try_new("ok", Domain::Ordinal(vec![1.0, 2.0])).is_ok());
        let err = Param::try_new("t", Domain::Ordinal(vec![])).unwrap_err();
        assert_eq!(err.context, "parameter");
        assert!(err.message.contains("empty domain"));
        let err = Param::try_new("t", Domain::Ordinal(vec![1.0, f64::NAN])).unwrap_err();
        assert!(err.message.contains("non-finite"));
        let err =
            Param::try_new("c", Domain::Categorical(vec!["x".into(), "x".into()])).unwrap_err();
        assert!(err.message.contains("duplicate category"));
    }
}
