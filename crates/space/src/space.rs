//! The cartesian parameter space.

use std::collections::HashSet;

use rand::Rng;

use crate::config::Configuration;
use crate::param::{Param, Value};

use pwu_stats::{InvalidInput, Xoshiro256PlusPlus};

/// Cartesian product of named parameters.
///
/// ```
/// use pwu_space::{Param, ParamSpace};
/// use pwu_stats::Xoshiro256PlusPlus;
///
/// let space = ParamSpace::new(
///     "demo",
///     vec![
///         Param::ordinal("tile", vec![1.0, 16.0, 32.0]),
///         Param::boolean("vectorize"),
///         Param::categorical("layout", ["DGZ", "GZD"]),
///     ],
/// );
/// assert_eq!(space.cardinality(), 3 * 2 * 2);
/// let mut rng = Xoshiro256PlusPlus::new(7);
/// let sample = space.sample_distinct(5, &mut rng);
/// assert_eq!(sample.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    name: String,
    params: Vec<Param>,
}

impl ParamSpace {
    /// Creates a space from a list of parameters, rejecting malformed ones.
    ///
    /// # Errors
    /// Returns [`InvalidInput`] if `params` is empty or contains duplicate
    /// names.
    pub fn try_new(name: impl Into<String>, params: Vec<Param>) -> Result<Self, InvalidInput> {
        let name = name.into();
        if params.is_empty() {
            return Err(InvalidInput::new(
                "param space",
                format!("space {name} has no parameters"),
            ));
        }
        for (i, p) in params.iter().enumerate() {
            if params[..i].iter().any(|q| q.name() == p.name()) {
                return Err(InvalidInput::new(
                    "param space",
                    format!("space {name} has duplicate parameter {}", p.name()),
                ));
            }
        }
        Ok(Self { name, params })
    }

    /// Creates a space from a list of parameters.
    ///
    /// # Panics
    /// Panics if `params` is empty or contains duplicate names. Use
    /// [`ParamSpace::try_new`] to handle malformed user input without
    /// panicking.
    #[must_use]
    pub fn new(name: impl Into<String>, params: Vec<Param>) -> Self {
        match Self::try_new(name, params) {
            Ok(s) => s,
            Err(e) => panic!("{}", e.message),
        }
    }

    /// Space name (benchmark name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameters, in declaration order.
    #[must_use]
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of parameters (the feature dimensionality before encoding).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Total number of configurations in the space.
    ///
    /// Saturates at `u128::MAX` (SPAPT spaces reach 10³⁰, which still fits).
    #[must_use]
    pub fn cardinality(&self) -> u128 {
        self.params
            .iter()
            .fold(1u128, |acc, p| acc.saturating_mul(p.arity() as u128))
    }

    /// Decodes a flat index in `[0, cardinality)` into a configuration
    /// (mixed-radix little-endian: the first parameter varies fastest),
    /// rejecting out-of-range indices.
    ///
    /// # Errors
    /// Returns [`InvalidInput`] if `index >= cardinality()`.
    pub fn try_decode_index(&self, mut index: u128) -> Result<Configuration, InvalidInput> {
        if index >= self.cardinality() {
            return Err(InvalidInput::new(
                "pool index",
                format!(
                    "index {index} out of range for space of {} points",
                    self.cardinality()
                ),
            ));
        }
        let mut levels = Vec::with_capacity(self.params.len());
        for p in &self.params {
            let arity = p.arity() as u128;
            levels.push((index % arity) as u32);
            index /= arity;
        }
        Ok(Configuration::new(levels))
    }

    /// Decodes a flat index in `[0, cardinality)` into a configuration
    /// (mixed-radix little-endian: the first parameter varies fastest).
    ///
    /// # Panics
    /// Panics if `index >= cardinality()`. Use
    /// [`ParamSpace::try_decode_index`] to handle untrusted indices.
    #[must_use]
    pub fn decode_index(&self, index: u128) -> Configuration {
        match self.try_decode_index(index) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{}", e.message),
        }
    }

    /// Encodes a configuration back to its flat index.
    ///
    /// # Panics
    /// Panics if the configuration does not belong to this space.
    #[must_use]
    pub fn encode_index(&self, cfg: &Configuration) -> u128 {
        self.validate(cfg);
        let mut index = 0u128;
        let mut stride = 1u128;
        for (p, &l) in self.params.iter().zip(cfg.levels()) {
            index += l as u128 * stride;
            stride *= p.arity() as u128;
        }
        index
    }

    /// Checks that `cfg` has the right shape for this space.
    ///
    /// # Errors
    /// Returns [`InvalidInput`] on dimensionality or level-range mismatch.
    pub fn try_validate(&self, cfg: &Configuration) -> Result<(), InvalidInput> {
        if cfg.len() != self.params.len() {
            return Err(InvalidInput::new(
                "configuration",
                format!(
                    "configuration has {} levels, space {} has {} parameters",
                    cfg.len(),
                    self.name,
                    self.params.len()
                ),
            ));
        }
        for (p, &l) in self.params.iter().zip(cfg.levels()) {
            if l as usize >= p.arity() {
                return Err(InvalidInput::new(
                    "configuration",
                    format!(
                        "level {l} out of range for parameter {} (arity {})",
                        p.name(),
                        p.arity()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Asserts that `cfg` has the right shape for this space.
    ///
    /// # Panics
    /// Panics on dimensionality or level-range mismatch. Use
    /// [`ParamSpace::try_validate`] to handle untrusted configurations.
    pub fn validate(&self, cfg: &Configuration) {
        if let Err(e) = self.try_validate(cfg) {
            panic!("{}", e.message);
        }
    }

    /// Decodes a configuration into named values.
    #[must_use]
    pub fn values(&self, cfg: &Configuration) -> Vec<(String, Value)> {
        self.validate(cfg);
        self.params
            .iter()
            .zip(cfg.levels())
            .map(|(p, &l)| (p.name().to_string(), p.domain().value(l)))
            .collect()
    }

    /// Draws one configuration uniformly at random.
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> Configuration {
        Configuration::new(
            self.params
                .iter()
                .map(|p| rng.gen_range(0..p.arity() as u32))
                .collect(),
        )
    }

    /// Draws `n` *distinct* configurations uniformly at random.
    ///
    /// This is the paper's surrogate sample of the space (10 000 points).
    /// Rejection sampling is used; it stays efficient because SPAPT-scale
    /// spaces are astronomically larger than the requested sample. If the
    /// whole space is smaller than `2 n`, the space is enumerated and
    /// shuffled instead, so small test spaces work too.
    ///
    /// # Panics
    /// Panics if `n` exceeds the space cardinality.
    pub fn sample_distinct(&self, n: usize, rng: &mut Xoshiro256PlusPlus) -> Vec<Configuration> {
        let card = self.cardinality();
        assert!(
            (n as u128) <= card,
            "cannot draw {n} distinct configurations from a space of {card}"
        );
        if card <= 2 * n as u128 {
            // Enumerate + Fisher–Yates shuffle, take the first n.
            let mut all: Vec<Configuration> = (0..card).map(|i| self.decode_index(i)).collect();
            for i in (1..all.len()).rev() {
                let j = rng.gen_range(0..=i);
                all.swap(i, j);
            }
            all.truncate(n);
            return all;
        }
        let mut seen: HashSet<Configuration> = HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let cfg = self.sample(rng);
            if seen.insert(cfg.clone()) {
                out.push(cfg);
            }
        }
        out
    }

    /// Iterates over every configuration (only sensible for tiny spaces).
    pub fn enumerate(&self) -> impl Iterator<Item = Configuration> + '_ {
        let card = self.cardinality();
        assert!(
            card <= 1u128 << 24,
            "refusing to enumerate a space of {card} points"
        );
        (0..card).map(move |i| self.decode_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn tiny() -> ParamSpace {
        ParamSpace::new(
            "tiny",
            vec![
                Param::ordinal("a", vec![1.0, 2.0, 3.0]),
                Param::boolean("b"),
                Param::categorical("c", ["x", "y"]),
            ],
        )
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(tiny().cardinality(), 3 * 2 * 2);
    }

    #[test]
    fn index_roundtrip() {
        let s = tiny();
        for i in 0..s.cardinality() {
            let cfg = s.decode_index(i);
            assert_eq!(s.encode_index(&cfg), i);
        }
    }

    #[test]
    fn enumerate_yields_distinct_everything() {
        let s = tiny();
        let all: Vec<_> = s.enumerate().collect();
        assert_eq!(all.len(), 12);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn sample_distinct_small_space_is_exhaustive() {
        let s = tiny();
        let mut rng = Xoshiro256PlusPlus::new(1);
        let got = s.sample_distinct(12, &mut rng);
        let set: std::collections::HashSet<_> = got.into_iter().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn sample_distinct_large_space() {
        let params: Vec<Param> = (0..10)
            .map(|i| Param::ordinal(format!("p{i}"), vec![0.0, 1.0, 2.0, 3.0]))
            .collect();
        let s = ParamSpace::new("big", params);
        let mut rng = Xoshiro256PlusPlus::new(2);
        let got = s.sample_distinct(5000, &mut rng);
        let set: std::collections::HashSet<_> = got.iter().cloned().collect();
        assert_eq!(set.len(), 5000);
        for cfg in &got {
            s.validate(cfg);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = tiny();
        let a = s.sample_distinct(6, &mut Xoshiro256PlusPlus::new(3));
        let b = s.sample_distinct(6, &mut Xoshiro256PlusPlus::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn values_decode_names() {
        let s = tiny();
        let cfg = Configuration::new(vec![2, 1, 0]);
        let vals = s.values(&cfg);
        assert_eq!(vals[0].0, "a");
        assert_eq!(vals[0].1, Value::Number(3.0));
        assert_eq!(vals[1].1, Value::Flag(true));
        assert_eq!(vals[2].1, Value::Category(0, "x".into()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_bad_level() {
        let s = tiny();
        s.validate(&Configuration::new(vec![3, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_param_names_rejected() {
        let _ = ParamSpace::new("dup", vec![Param::boolean("x"), Param::boolean("x")]);
    }

    #[test]
    fn try_constructors_reject_without_panicking() {
        let err = ParamSpace::try_new("empty", vec![]).unwrap_err();
        assert_eq!(err.context, "param space");
        let err =
            ParamSpace::try_new("dup", vec![Param::boolean("x"), Param::boolean("x")]).unwrap_err();
        assert!(err.message.contains("duplicate parameter"));

        let s = tiny();
        assert!(s.try_decode_index(11).is_ok());
        let err = s.try_decode_index(12).unwrap_err();
        assert_eq!(err.context, "pool index");

        assert!(s.try_validate(&Configuration::new(vec![0, 0, 0])).is_ok());
        let err = s.try_validate(&Configuration::new(vec![0, 0])).unwrap_err();
        assert_eq!(err.context, "configuration");
        let err = s
            .try_validate(&Configuration::new(vec![3, 0, 0]))
            .unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn spapt_scale_cardinality_saturates_safely() {
        // 38 parameters of arity 32 ≈ 10^57 — must not overflow.
        let params: Vec<Param> = (0..38)
            .map(|i| Param::ordinal(format!("p{i}"), (0..32).map(f64::from).collect::<Vec<_>>()))
            .collect();
        let s = ParamSpace::new("huge", params);
        assert!(s.cardinality() >= 1u128 << 120);
    }
}
