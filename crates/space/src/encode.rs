//! Feature encoding of configurations for the learner.
//!
//! Each parameter becomes exactly one feature column:
//!
//! - ordinal parameters contribute their *numeric value* (a tile size of 128
//!   is meaningfully four times 32, and regression trees exploit the order);
//! - boolean parameters contribute 0.0 / 1.0;
//! - categorical parameters contribute their *category code* stored in an
//!   `f64`, and the schema marks the column as categorical so the forest
//!   performs subset splits instead of threshold splits.

use crate::config::Configuration;
use crate::matrix::FeatureMatrix;
use crate::param::Domain;
use crate::space::ParamSpace;

/// Kind of one encoded feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Ordered numeric column; trees split with `x <= threshold`.
    Numeric,
    /// Unordered column with the given number of categories; trees split
    /// with `x ∈ S` for a category subset `S`.
    Categorical {
        /// Number of distinct categories in the column.
        n_categories: usize,
    },
}

/// Column schema of the encoded feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSchema {
    names: Vec<String>,
    kinds: Vec<FeatureKind>,
}

impl FeatureSchema {
    /// Builds the schema for a space (one column per parameter).
    #[must_use]
    pub fn for_space(space: &ParamSpace) -> Self {
        let mut names = Vec::with_capacity(space.dim());
        let mut kinds = Vec::with_capacity(space.dim());
        for p in space.params() {
            names.push(p.name().to_string());
            kinds.push(match p.domain() {
                Domain::Ordinal(_) | Domain::Bool => FeatureKind::Numeric,
                Domain::Categorical(cs) => FeatureKind::Categorical {
                    n_categories: cs.len(),
                },
            });
        }
        Self { names, kinds }
    }

    /// Number of feature columns.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.kinds.len()
    }

    /// Column names.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column kinds.
    #[must_use]
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Encodes one configuration into a feature row.
    ///
    /// # Panics
    /// Panics if the configuration does not match the space the schema was
    /// built from (wrong dimensionality).
    #[must_use]
    pub fn encode(&self, space: &ParamSpace, cfg: &Configuration) -> Vec<f64> {
        space.validate(cfg);
        assert_eq!(
            space.dim(),
            self.dim(),
            "schema dimensionality does not match space"
        );
        space
            .params()
            .iter()
            .zip(cfg.levels())
            .map(|(p, &l)| match p.domain() {
                Domain::Ordinal(vs) => vs[l as usize],
                Domain::Bool => f64::from(l),
                Domain::Categorical(_) => f64::from(l),
            })
            .collect()
    }

    /// Encodes many configurations into a row-major feature matrix.
    #[must_use]
    pub fn encode_all(&self, space: &ParamSpace, cfgs: &[Configuration]) -> Vec<Vec<f64>> {
        cfgs.iter().map(|c| self.encode(space, c)).collect()
    }

    /// Encodes many configurations into a flat column-major
    /// [`FeatureMatrix`] — the layout the forest's hot paths consume.
    ///
    /// Entry-for-entry identical to [`FeatureSchema::encode_all`]; only the
    /// storage layout differs.
    #[must_use]
    pub fn encode_matrix(&self, space: &ParamSpace, cfgs: &[Configuration]) -> FeatureMatrix {
        let mut m = FeatureMatrix::new(self.dim());
        for cfg in cfgs {
            m.push_row(&self.encode(space, cfg));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn space() -> ParamSpace {
        ParamSpace::new(
            "s",
            vec![
                Param::ordinal("tile", vec![1.0, 16.0, 32.0]),
                Param::boolean("vector"),
                Param::categorical("layout", ["DGZ", "DZG", "GDZ"]),
            ],
        )
    }

    #[test]
    fn schema_kinds() {
        let s = space();
        let schema = FeatureSchema::for_space(&s);
        assert_eq!(schema.dim(), 3);
        assert_eq!(schema.kinds()[0], FeatureKind::Numeric);
        assert_eq!(schema.kinds()[1], FeatureKind::Numeric);
        assert_eq!(
            schema.kinds()[2],
            FeatureKind::Categorical { n_categories: 3 }
        );
        assert_eq!(schema.names()[2], "layout");
    }

    #[test]
    fn encode_uses_values_not_levels_for_ordinals() {
        let s = space();
        let schema = FeatureSchema::for_space(&s);
        let row = schema.encode(&s, &Configuration::new(vec![2, 1, 0]));
        assert_eq!(row, vec![32.0, 1.0, 0.0]);
    }

    #[test]
    fn encode_is_injective_on_tiny_space() {
        let s = space();
        let schema = FeatureSchema::for_space(&s);
        let rows: Vec<Vec<f64>> = s.enumerate().map(|c| schema.encode(&s, &c)).collect();
        for (i, a) in rows.iter().enumerate() {
            for b in &rows[..i] {
                assert_ne!(a, b, "two configurations encoded identically");
            }
        }
    }

    #[test]
    fn encode_all_shape() {
        let s = space();
        let schema = FeatureSchema::for_space(&s);
        let cfgs: Vec<Configuration> = s.enumerate().collect();
        let m = schema.encode_all(&s, &cfgs);
        assert_eq!(m.len(), cfgs.len());
        assert!(m.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn encode_matrix_matches_encode_all_entry_for_entry() {
        let s = space();
        let schema = FeatureSchema::for_space(&s);
        let cfgs: Vec<Configuration> = s.enumerate().collect();
        let rows = schema.encode_all(&s, &cfgs);
        let m = schema.encode_matrix(&s, &cfgs);
        assert_eq!(m.n_rows(), rows.len());
        assert_eq!(m.n_cols(), schema.dim());
        assert_eq!(m.to_rows(), rows);
    }
}
