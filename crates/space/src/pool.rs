//! Sample pools for active learning.
//!
//! The paper's protocol: draw 10 000 distinct configurations from the space,
//! split 7000 into the unlabeled *pool* (Algorithm 1's `X_pool`) and 3000
//! into the held-out *test set*. [`Pool`] keeps configurations and their
//! encoded feature rows aligned, and supports the two operations Algorithm 1
//! needs: scoring every remaining candidate and removing a selected batch.
//!
//! Both [`Pool`] and [`LabeledSet`] back their features with the flat
//! column-major [`FeatureMatrix`], so the forest's fit and batch-predict hot
//! paths run over contiguous columns with no per-row indirection.

use rand::Rng;

use crate::config::Configuration;
use crate::encode::FeatureSchema;
use crate::matrix::FeatureMatrix;
use crate::space::ParamSpace;

use pwu_stats::Xoshiro256PlusPlus;

/// An unlabeled candidate pool with pre-encoded features.
#[derive(Debug, Clone)]
pub struct Pool {
    configs: Vec<Configuration>,
    features: FeatureMatrix,
}

impl Pool {
    /// Builds a pool by encoding `configs` with `schema`.
    #[must_use]
    pub fn new(space: &ParamSpace, schema: &FeatureSchema, configs: Vec<Configuration>) -> Self {
        let features = schema.encode_matrix(space, &configs);
        Self { configs, features }
    }

    /// Number of remaining candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when no candidates remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The remaining configurations.
    #[must_use]
    pub fn configs(&self) -> &[Configuration] {
        &self.configs
    }

    /// The feature matrix, row-aligned with [`Pool::configs`].
    #[must_use]
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// Removes and returns the candidates at the given indices.
    ///
    /// Indices refer to the current pool ordering. Uses `swap_remove`, so the
    /// pool order changes; strategies must not rely on pool order across
    /// iterations (none does — every iteration rescoring is positional).
    ///
    /// # Panics
    /// Panics if any index is out of range or duplicated.
    pub fn take(&mut self, indices: &[usize]) -> Vec<(Configuration, Vec<f64>)> {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.windows(2).for_each(|w| {
            assert_ne!(w[0], w[1], "duplicate index {} in Pool::take", w[0]);
        });
        // Remove from the highest index down so earlier removals do not
        // disturb later ones.
        let mut out = Vec::with_capacity(indices.len());
        for &i in sorted.iter().rev() {
            assert!(i < self.configs.len(), "index {i} out of range");
            let cfg = self.configs.swap_remove(i);
            let row = self.features.swap_remove_row(i);
            out.push((cfg, row));
        }
        out.reverse();
        out
    }

    /// Keeps only the configurations `keep` accepts, preserving order, and
    /// returns how many were removed.
    ///
    /// Used by the active-learning loop to drop candidates a legality
    /// analysis has marked [`Illegal`](crate::ConfigLegality::Illegal)
    /// before any measurement budget is spent on them.
    pub fn retain(&mut self, keep: impl FnMut(&Configuration) -> bool) -> usize {
        let kept: Vec<bool> = self.configs.iter().map(keep).collect();
        let removed = self.features.retain_rows(&kept);
        let mut i = 0;
        self.configs.retain(|_| {
            let k = kept[i];
            i += 1;
            k
        });
        removed
    }

    /// Removes and returns `n` uniformly random candidates.
    pub fn take_random(
        &mut self,
        n: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Vec<(Configuration, Vec<f64>)> {
        let n = n.min(self.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let i = rng.gen_range(0..self.configs.len());
            let cfg = self.configs.swap_remove(i);
            let row = self.features.swap_remove_row(i);
            out.push((cfg, row));
        }
        out
    }
}

/// A labeled sample set: configurations, features and observed times.
#[derive(Debug, Clone, Default)]
pub struct LabeledSet {
    configs: Vec<Configuration>,
    features: FeatureMatrix,
    labels: Vec<f64>,
}

impl LabeledSet {
    /// Creates an empty set.
    ///
    /// The feature width is fixed by the first [`LabeledSet::push`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a labeled set from aligned parts.
    ///
    /// # Panics
    /// Panics if the parts disagree in length.
    #[must_use]
    pub fn from_parts(
        configs: Vec<Configuration>,
        features: FeatureMatrix,
        labels: Vec<f64>,
    ) -> Self {
        assert_eq!(configs.len(), features.n_rows());
        assert_eq!(configs.len(), labels.len());
        Self {
            configs,
            features,
            labels,
        }
    }

    /// Appends one labeled observation.
    ///
    /// # Panics
    /// Panics if `features` has a different width than earlier rows.
    pub fn push(&mut self, config: Configuration, features: &[f64], label: f64) {
        if self.labels.is_empty() && self.features.n_cols() != features.len() {
            self.features = FeatureMatrix::new(features.len());
        }
        self.features.push_row(features);
        self.configs.push(config);
        self.labels.push(label);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the set holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Configurations.
    #[must_use]
    pub fn configs(&self) -> &[Configuration] {
        &self.configs
    }

    /// The feature matrix, row-aligned with the labels.
    #[must_use]
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// Observed execution times.
    #[must_use]
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Sum of all labels — the paper's Cumulative time Cost (Eq. 3).
    #[must_use]
    pub fn cumulative_cost(&self) -> f64 {
        self.labels.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn setup() -> (ParamSpace, FeatureSchema, Pool) {
        let space = ParamSpace::new(
            "s",
            vec![
                Param::ordinal("a", vec![0.0, 1.0, 2.0, 3.0]),
                Param::ordinal("b", vec![0.0, 1.0, 2.0, 3.0]),
            ],
        );
        let schema = FeatureSchema::for_space(&space);
        let configs: Vec<Configuration> = space.enumerate().collect();
        let pool = Pool::new(&space, &schema, configs);
        (space, schema, pool)
    }

    #[test]
    fn take_removes_and_returns_aligned_rows() {
        let (_, _, mut pool) = setup();
        let before = pool.len();
        let taken = pool.take(&[0, 5, 3]);
        assert_eq!(taken.len(), 3);
        assert_eq!(pool.len(), before - 3);
        for (cfg, row) in &taken {
            // Row re-derivable from config: feature = ordinal value = level.
            assert_eq!(row[0], f64::from(cfg.level(0)));
            assert_eq!(row[1], f64::from(cfg.level(1)));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn take_rejects_duplicates() {
        let (_, _, mut pool) = setup();
        let _ = pool.take(&[1, 1]);
    }

    #[test]
    fn take_random_shrinks_pool_without_repeats() {
        let (_, _, mut pool) = setup();
        let mut rng = Xoshiro256PlusPlus::new(9);
        let taken = pool.take_random(10, &mut rng);
        assert_eq!(taken.len(), 10);
        assert_eq!(pool.len(), 6);
        let mut all: Vec<Configuration> = taken.into_iter().map(|t| t.0).collect();
        all.extend(pool.configs().iter().cloned());
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 16, "a configuration appeared twice");
    }

    #[test]
    fn retain_filters_and_keeps_rows_aligned() {
        let (_, _, mut pool) = setup();
        let removed = pool.retain(|cfg| cfg.level(0) != 2);
        assert_eq!(removed, 4);
        assert_eq!(pool.len(), 12);
        for (i, cfg) in pool.configs().iter().enumerate() {
            assert_ne!(cfg.level(0), 2);
            let row = pool.features().row(i);
            assert_eq!(row[0], f64::from(cfg.level(0)));
            assert_eq!(row[1], f64::from(cfg.level(1)));
        }
    }

    #[test]
    fn take_random_clamps_to_available() {
        let (_, _, mut pool) = setup();
        let mut rng = Xoshiro256PlusPlus::new(1);
        let taken = pool.take_random(100, &mut rng);
        assert_eq!(taken.len(), 16);
        assert!(pool.is_empty());
    }

    #[test]
    fn features_stay_aligned_after_mixed_removals() {
        let (_, _, mut pool) = setup();
        let mut rng = Xoshiro256PlusPlus::new(3);
        let _ = pool.take_random(4, &mut rng);
        let _ = pool.take(&[1, 6]);
        assert_eq!(pool.features().n_rows(), pool.len());
        for (i, cfg) in pool.configs().iter().enumerate() {
            assert_eq!(pool.features().get(i, 0), f64::from(cfg.level(0)));
            assert_eq!(pool.features().get(i, 1), f64::from(cfg.level(1)));
        }
    }

    #[test]
    fn labeled_set_accumulates_and_costs() {
        let (space, schema, mut pool) = setup();
        let mut set = LabeledSet::new();
        let mut rng = Xoshiro256PlusPlus::new(2);
        for (cfg, row) in pool.take_random(3, &mut rng) {
            let y = row[0] + row[1];
            set.push(cfg, &row, y);
        }
        assert_eq!(set.len(), 3);
        assert_eq!(set.features().n_rows(), 3);
        assert_eq!(set.features().n_cols(), 2);
        let expected: f64 = set.labels().iter().sum();
        assert_eq!(set.cumulative_cost(), expected);
        // from_parts round-trips
        let rebuilt = LabeledSet::from_parts(
            set.configs().to_vec(),
            set.features().clone(),
            set.labels().to_vec(),
        );
        assert_eq!(rebuilt.len(), 3);
        let _ = (space, schema);
    }
}
