//! Property-based tests for parameter spaces, encodings and pools.

use proptest::prelude::*;
use pwu_space::{Configuration, FeatureSchema, Param, ParamSpace, Pool};
use pwu_stats::Xoshiro256PlusPlus;

/// Strategy producing a random small space (2–6 parameters, arity 2–6,
/// mixing ordinal / boolean / categorical domains).
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    prop::collection::vec((0u8..3, 2usize..6), 2..6).prop_map(|specs| {
        let params: Vec<Param> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (kind, arity))| match kind {
                0 => Param::ordinal(
                    format!("ord{i}"),
                    (0..arity).map(|v| (v * v) as f64 + 1.0).collect::<Vec<_>>(),
                ),
                1 => Param::boolean(format!("flag{i}")),
                _ => Param::categorical(
                    format!("cat{i}"),
                    (0..arity).map(|v| format!("c{v}")).collect::<Vec<_>>(),
                ),
            })
            .collect();
        ParamSpace::new("prop", params)
    })
}

proptest! {
    #[test]
    fn index_roundtrip_everywhere(space in arb_space(), seed in 0u64..1000) {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        for _ in 0..32 {
            let cfg = space.sample(&mut rng);
            let idx = space.encode_index(&cfg);
            prop_assert_eq!(space.decode_index(idx), cfg);
        }
    }

    #[test]
    fn sampled_configs_are_valid(space in arb_space(), seed in 0u64..1000) {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let n = 16usize.min(space.cardinality() as usize);
        for cfg in space.sample_distinct(n, &mut rng) {
            space.validate(&cfg); // must not panic
        }
    }

    #[test]
    fn sample_distinct_has_no_repeats(space in arb_space(), seed in 0u64..1000) {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let n = (space.cardinality() as usize).min(64);
        let got = space.sample_distinct(n, &mut rng);
        let set: std::collections::HashSet<_> = got.iter().cloned().collect();
        prop_assert_eq!(set.len(), n);
    }

    #[test]
    fn encoding_dimensionality_matches(space in arb_space(), seed in 0u64..1000) {
        let schema = FeatureSchema::for_space(&space);
        prop_assert_eq!(schema.dim(), space.dim());
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let cfg = space.sample(&mut rng);
        let row = schema.encode(&space, &cfg);
        prop_assert_eq!(row.len(), space.dim());
        prop_assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encoding_distinguishes_distinct_configs(space in arb_space(), seed in 0u64..1000) {
        let schema = FeatureSchema::for_space(&space);
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let n = (space.cardinality() as usize).min(32);
        let cfgs = space.sample_distinct(n, &mut rng);
        let rows = schema.encode_all(&space, &cfgs);
        for i in 0..rows.len() {
            for j in 0..i {
                prop_assert_ne!(&rows[i], &rows[j], "configs {} and {} collide", i, j);
            }
        }
    }

    #[test]
    fn pool_take_preserves_total_population(space in arb_space(), seed in 0u64..1000) {
        let schema = FeatureSchema::for_space(&space);
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let n = (space.cardinality() as usize).min(48);
        let cfgs = space.sample_distinct(n, &mut rng);
        let mut pool = Pool::new(&space, &schema, cfgs.clone());
        let take_n = n / 3;
        let indices: Vec<usize> = (0..take_n).map(|i| i * 2 % n.max(1)).collect();
        // Deduplicate indices (the generator above can collide).
        let mut uniq: Vec<usize> = indices;
        uniq.sort_unstable();
        uniq.dedup();
        let taken = pool.take(&uniq);
        prop_assert_eq!(taken.len() + pool.len(), n);
        let mut survivors: Vec<Configuration> = pool.configs().to_vec();
        survivors.extend(taken.into_iter().map(|t| t.0));
        survivors.sort_by_key(|c| c.levels().to_vec());
        let mut orig = cfgs;
        orig.sort_by_key(|c| c.levels().to_vec());
        prop_assert_eq!(survivors, orig);
    }
}
