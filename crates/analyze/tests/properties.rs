//! Property tests for the legality analysis, plus the 18-kernel
//! lint-table snapshot.

use proptest::prelude::*;
use pwu_analyze::{legalize, lint_suite, render_table, LintLevel};
use pwu_space::{ConfigLegality, Configuration, TuningTarget};
use pwu_spapt::{all_kernels, extended_kernels, BlockLegality, BlockTransform};
use pwu_stats::Xoshiro256PlusPlus;

fn full_suite() -> Vec<pwu_spapt::Kernel> {
    all_kernels()
        .into_iter()
        .chain(extended_kernels())
        .collect()
}

/// The identity configuration (every parameter at level 0: tile 1,
/// unroll 1, no scalar replacement, no vectorization) must be Legal for
/// every kernel, before and after attaching the analysis masks.
#[test]
fn identity_configuration_is_always_legal() {
    for kernel in full_suite() {
        let identity = Configuration::new(vec![0; kernel.space().dim()]);
        assert_eq!(
            kernel.lint_config(&identity),
            ConfigLegality::Legal,
            "{}: identity flagged without masks",
            kernel.name()
        );
        let legal = legalize(kernel);
        assert_eq!(
            legal.lint_config(&identity),
            ConfigLegality::Legal,
            "{}: identity flagged by the dependence analysis",
            legal.name()
        );
    }
}

/// Derives a pseudo-random legality mask and transform of the given depth
/// from a seed.
fn arbitrary_case(depth: usize, seed: u64) -> (BlockLegality, BlockTransform) {
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let mut flip = |p: u64| rng.next().is_multiple_of(p);
    let mut mask = BlockLegality::permissive(depth);
    for l in 0..depth {
        mask.tile_ok[l] = !flip(3);
        mask.unroll_ok[l] = !flip(3);
        mask.regtile_ok[l] = !flip(3);
    }
    mask.scalar_replace_ok = !flip(3);
    mask.vectorize_ok = !flip(3);
    mask.vectorize_clean = mask.vectorize_ok && !flip(2);

    let mut t = BlockTransform::identity(depth);
    let mut rng2 = Xoshiro256PlusPlus::new(seed ^ 0x9E37_79B9);
    let mut pick = |choices: &[u64]| choices[(rng2.next() % choices.len() as u64) as usize];
    for l in 0..depth {
        t.tiles[l] = (pick(&[1, 1, 16, 64]), pick(&[1, 1, 8]));
        t.unroll[l] = pick(&[1, 1, 2, 4]);
        t.regtile[l] = pick(&[1, 1, 2]);
    }
    t.scalar_replace = pick(&[0, 1]) == 1;
    t.vectorize = pick(&[0, 1]) == 1;
    (mask, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The identity transform classifies Legal under *any* legality mask.
    #[test]
    fn identity_transform_is_legal_under_any_mask(seed in 0u64..100_000, depth in 1usize..5) {
        let (mask, _) = arbitrary_case(depth, seed);
        let identity = BlockTransform::identity(depth);
        prop_assert_eq!(mask.classify(&identity), ConfigLegality::Legal);
    }

    /// Legality is monotone under tile shrinking: resetting any tile pair
    /// to (1, 1) never makes the verdict worse.
    #[test]
    fn legality_is_monotone_under_tile_shrinking(seed in 0u64..100_000, depth in 1usize..5) {
        let (mask, t) = arbitrary_case(depth, seed);
        let before = mask.classify(&t);
        for l in 0..depth {
            let mut shrunk = t.clone();
            shrunk.tiles[l] = (1, 1);
            prop_assert!(
                mask.classify(&shrunk) <= before,
                "shrinking tile {l} worsened {before:?}"
            );
        }
        // Shrinking everything restricted to identity levels reaches Legal.
        let mut minimal = t.clone();
        for l in 0..depth {
            minimal.tiles[l] = (1, 1);
            minimal.unroll[l] = 1;
            minimal.regtile[l] = 1;
        }
        minimal.scalar_replace = false;
        minimal.vectorize = false;
        prop_assert_eq!(mask.classify(&minimal), ConfigLegality::Legal);
    }

    /// Clamping always produces a transform the mask accepts (never
    /// Illegal), and clamping a clean transform is the identity operation.
    #[test]
    fn clamp_is_idempotent_and_legalizing(seed in 0u64..100_000, depth in 1usize..5) {
        let (mask, t) = arbitrary_case(depth, seed);
        let (clamped, changed) = mask.clamp(&t);
        prop_assert!(mask.classify(&clamped) != ConfigLegality::Illegal);
        let (again, changed_again) = mask.clamp(&clamped);
        prop_assert!(!changed_again, "clamp must be idempotent");
        prop_assert_eq!(&again, &clamped);
        if !changed {
            prop_assert_eq!(&clamped, &t);
        }
    }
}

/// Snapshot of the 18-kernel lint table: kernel set, dependence counts,
/// severity totals and restriction summaries are pinned so an analysis
/// regression shows up as a diff here.
#[test]
fn lint_table_snapshot() {
    let reports = lint_suite();
    let table = render_table(&reports);
    let expected = "\
kernel        dim blocks  deps  err warn info  restricted
------------------------------------------------------------------------------
adi            20      2     2    0    5    0  s1: vec; s2: vec
atax           20      2     6    0    0    1  t: vec?
bicgkernel     20      2     6    0    0    1  q: vec?
correlation    24      2     9    0    0    7  ms: vec?; cr: vec?
dgemv3         30      3     9    0    0    3  g1: vec?; g2: vec?; g3: vec?
fdtd           27      3     9    0    4    0  -
gemver         36      4     6    0    0    2  xt: vec?; w: vec?
gesummv        16      2     6    0    0    1  mv: vec?
hessian        20      2     0    0   12    0  -
jacobi         20      2     0    0    4    0  -
lu             14      1    15    0    5    0  up: tile(i,j) ujam(k) scr vec
mm             14      1     3    0    0    1  c: vec?
mvt            20      2     6    0    0    1  x1: vec?
seidel         10      1     8    0   15    0  gs: tile(j) ujam(i) vec
trmm           14      1     9    0    3    1  tm: tile(k) ujam(i) vec
covariance     14      1     3    0    0    4  cov: vec?
stencil3d      14      1     0    0    6    3  -
tensor         18      1     3    0    0    5  tc: vec?
";
    assert_eq!(
        table, expected,
        "lint table drifted:\n--- got ---\n{table}\n--- want ---\n{expected}"
    );
    assert!(reports.iter().all(|r| r.count(LintLevel::Error) == 0));
}
