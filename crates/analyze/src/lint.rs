//! Kernel-level lint reports and the suite-wide diagnostic table.

use std::fmt::Write as _;

use pwu_space::TuningTarget;
use pwu_spapt::transform::BlockLegality;
use pwu_spapt::{all_kernels, extended_kernels, Kernel};

use crate::dependence::analyze_dependences;
use crate::diagnostics::{worst_level, Diagnostic, LintLevel};
use crate::legality::legality_from_deps;
use crate::validate::{validate_kernel_model, validate_kernel_space, validate_nest};

/// Analysis summary of one block.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Block label.
    pub label: String,
    /// Number of dependence instances found.
    pub n_deps: usize,
    /// The derived legality mask.
    pub legality: BlockLegality,
}

impl BlockReport {
    /// Compact summary of what the mask restricts, e.g. `tile(j) ujam(i)`;
    /// empty when permissive.
    #[must_use]
    pub fn restrictions(&self, loop_names: &[String]) -> String {
        let mut parts = Vec::new();
        let joined = |ok: &[bool]| {
            ok.iter()
                .enumerate()
                .filter(|&(_, &b)| !b)
                .map(|(l, _)| loop_names[l].clone())
                .collect::<Vec<_>>()
                .join(",")
        };
        let tiles = joined(&self.legality.tile_ok);
        if !tiles.is_empty() {
            parts.push(format!("tile({tiles})"));
        }
        let jams = joined(&self.legality.unroll_ok);
        if !jams.is_empty() {
            parts.push(format!("ujam({jams})"));
        }
        if !self.legality.scalar_replace_ok {
            parts.push("scr".into());
        }
        if !self.legality.vectorize_ok {
            parts.push("vec".into());
        } else if !self.legality.vectorize_clean {
            parts.push("vec?".into());
        }
        parts.join(" ")
    }
}

/// Full analysis report for one kernel.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Parameter-space dimension.
    pub dim: usize,
    /// Per-block summaries, in block order.
    pub blocks: Vec<BlockReport>,
    /// Every diagnostic the analysis produced.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-block restriction summaries (block label: restrictions).
    pub restrictions: Vec<String>,
}

impl KernelReport {
    /// Number of diagnostics at `level`.
    #[must_use]
    pub fn count(&self, level: LintLevel) -> usize {
        self.diagnostics.iter().filter(|d| d.level == level).count()
    }

    /// Worst severity present, if any.
    #[must_use]
    pub fn worst(&self) -> Option<LintLevel> {
        worst_level(&self.diagnostics)
    }

    /// Total dependence instances across blocks.
    #[must_use]
    pub fn n_deps(&self) -> usize {
        self.blocks.iter().map(|b| b.n_deps).sum()
    }
}

/// Runs the full analysis (dependences, legality, IR/model/space
/// validation) on one kernel.
#[must_use]
pub fn lint_kernel(kernel: &Kernel) -> KernelReport {
    let name = kernel.name().to_string();
    let mut diagnostics = Vec::new();
    let mut blocks = Vec::new();
    let mut restrictions = Vec::new();
    for block in kernel.blocks() {
        let deps = analyze_dependences(&block.nest);
        let (mask, diags) = legality_from_deps(&name, block.label, &block.nest, &deps);
        diagnostics.extend(diags);
        diagnostics.extend(validate_nest(&name, block.label, &block.nest));
        let report = BlockReport {
            label: block.label.to_string(),
            n_deps: deps.len(),
            legality: mask,
        };
        let loop_names: Vec<String> = block.nest.loops.iter().map(|l| l.name.clone()).collect();
        let summary = report.restrictions(&loop_names);
        if !summary.is_empty() {
            restrictions.push(format!("{}: {summary}", block.label));
        }
        blocks.push(report);
    }
    diagnostics.extend(validate_kernel_model(kernel));
    diagnostics.extend(validate_kernel_space(kernel));
    KernelReport {
        kernel: name,
        dim: kernel.space().dim(),
        blocks,
        diagnostics,
        restrictions,
    }
}

/// Attaches the analysis-derived legality masks to a kernel, so its
/// [`TuningTarget::lint_config`] verdicts and clamped evaluation reflect
/// the dependence analysis.
#[must_use]
pub fn legalize(kernel: Kernel) -> Kernel {
    let masks: Vec<BlockLegality> = kernel
        .blocks()
        .iter()
        .map(|b| crate::legality::block_legality(kernel.name(), b.label, &b.nest).0)
        .collect();
    kernel.with_legality(masks)
}

/// Lints the full 18-problem suite: the paper's 12 kernels plus the
/// extended 6.
#[must_use]
pub fn lint_suite() -> Vec<KernelReport> {
    all_kernels()
        .iter()
        .chain(&extended_kernels())
        .map(lint_kernel)
        .collect()
}

/// Renders the per-kernel diagnostic table `pwu-lint` prints.
#[must_use]
pub fn render_table(reports: &[KernelReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>4} {:>6} {:>5} {:>4} {:>4} {:>4}  restricted",
        "kernel", "dim", "blocks", "deps", "err", "warn", "info"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for r in reports {
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>6} {:>5} {:>4} {:>4} {:>4}  {}",
            r.kernel,
            r.dim,
            r.blocks.len(),
            r.n_deps(),
            r.count(LintLevel::Error),
            r.count(LintLevel::Warn),
            r.count(LintLevel::Info),
            if r.restrictions.is_empty() {
                "-".to_string()
            } else {
                r.restrictions.join("; ")
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_18_kernels_without_errors() {
        let reports = lint_suite();
        assert_eq!(reports.len(), 18);
        for r in &reports {
            assert_eq!(
                r.count(LintLevel::Error),
                0,
                "{}: unexpected Error diagnostics: {:#?}",
                r.kernel,
                r.diagnostics
            );
        }
    }

    #[test]
    fn adi_vectorization_is_restricted_by_its_carried_flow_dep() {
        let adi = pwu_spapt::kernel_by_name("adi").expect("adi exists");
        let report = lint_kernel(&adi);
        // Both update sweeps read X[i1][i2-1] (resp. B) while writing
        // X[i1][i2]: a flow dependence with distance (0, 1) carried by the
        // innermost loop — vectorization must be clamped off.
        for b in &report.blocks {
            assert!(
                !b.legality.vectorize_ok,
                "adi/{}: innermost-carried flow dep must forbid vectorize",
                b.label
            );
            assert!(b.legality.tile_ok.iter().all(|&x| x), "adi tiling is legal");
            assert!(
                b.legality.unroll_ok.iter().all(|&x| x),
                "adi unroll-jam is legal: no '>' below the carrier"
            );
        }
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "legality/vectorize-flow-dep"));
    }

    #[test]
    fn seidel_tiling_and_jamming_are_restricted() {
        let seidel = pwu_spapt::kernel_by_name("seidel").expect("seidel exists");
        let report = lint_kernel(&seidel);
        let gs = &report.blocks[0];
        // The in-place 9-point sweep carries (1, -1): tiling j and
        // unroll-jamming i are illegal; tiling i (strip-mining) is fine.
        assert!(gs.legality.tile_ok[0]);
        assert!(!gs.legality.tile_ok[1]);
        assert!(!gs.legality.unroll_ok[0]);
        assert!(gs.legality.unroll_ok[1]);
        assert!(!gs.legality.vectorize_ok);
    }

    #[test]
    fn legalize_attaches_masks_that_change_verdicts() {
        use pwu_space::{ConfigLegality, Configuration};
        let plain = pwu_spapt::kernel_by_name("seidel").expect("seidel exists");
        let legal = legalize(pwu_spapt::kernel_by_name("seidel").expect("seidel exists"));
        assert!(legal.legality().is_some());
        // Find a configuration requesting an unroll-jam of loop i: params
        // are T1/T2 (i, j), then U_i, U_j, …
        let dim = plain.space().dim();
        let u_i = plain
            .space()
            .params()
            .iter()
            .position(|p| p.name().starts_with("U_") && p.name().ends_with("_i"))
            .expect("unroll param for i");
        let mut levels = vec![0u32; dim];
        levels[u_i] = 3; // unroll factor 4
        let cfg = Configuration::new(levels);
        assert_eq!(plain.lint_config(&cfg), ConfigLegality::Legal);
        assert_eq!(legal.lint_config(&cfg), ConfigLegality::Illegal);
    }

    #[test]
    fn table_renders_one_row_per_kernel() {
        let reports = lint_suite();
        let table = render_table(&reports);
        for r in &reports {
            assert!(table.contains(&r.kernel), "missing row for {}", r.kernel);
        }
        assert!(table.contains("restricted"));
    }
}
