//! Machine-readable lint diagnostics.
//!
//! Every finding the analyzer produces — dependence-based legality
//! restrictions, IR invariant violations, model sanity failures — is a
//! [`Diagnostic`]: a severity level, a stable rule id (`area/rule-name`),
//! provenance (kernel, block, and the loop/array/parameter concerned) and a
//! human-readable message. The `pwu-lint` binary renders them and gates CI
//! on the worst level.

use std::fmt;

/// Severity of a finding.
///
/// Ordered so `max` folds give the worst finding: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintLevel {
    /// Informational: benign, but worth surfacing (degenerate loop, tile
    /// sizes the extents will clamp).
    Info,
    /// Suspicious but tolerated: the search space contains transformation
    /// requests the legality analysis restricts, or an access pattern
    /// (stencil halo) that leans on the simulator's tolerance.
    Warn,
    /// A genuine defect: an IR invariant or model sanity check failed.
    /// `pwu-lint` exits non-zero when any Error-level finding exists.
    Error,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Info => "info",
            Self::Warn => "warn",
            Self::Error => "error",
        })
    }
}

/// One analyzer finding with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub level: LintLevel,
    /// Stable rule id, `area/rule-name` (e.g. `legality/tile-negative-dep`).
    pub rule: &'static str,
    /// Kernel the finding belongs to.
    pub kernel: String,
    /// Block label within the kernel (`-` for kernel-wide findings).
    pub block: String,
    /// The loop, array or parameter concerned (`-` when not applicable).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    #[must_use]
    pub fn new(
        level: LintLevel,
        rule: &'static str,
        kernel: impl Into<String>,
        block: impl Into<String>,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            level,
            rule,
            kernel: kernel.into(),
            block: block.into(),
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}/{} {}: {}",
            self.level, self.rule, self.kernel, self.block, self.subject, self.message
        )
    }
}

/// The worst severity present in `diags`, if any.
#[must_use]
pub fn worst_level(diags: &[Diagnostic]) -> Option<LintLevel> {
    diags.iter().map(|d| d.level).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_displayed() {
        assert!(LintLevel::Info < LintLevel::Warn);
        assert!(LintLevel::Warn < LintLevel::Error);
        assert_eq!(LintLevel::Error.to_string(), "error");
    }

    #[test]
    fn diagnostics_render_with_provenance() {
        let d = Diagnostic::new(
            LintLevel::Warn,
            "legality/tile-negative-dep",
            "seidel",
            "gs",
            "loop j",
            "dependence (1, -1) has direction '>' in j",
        );
        let s = d.to_string();
        assert!(s.contains("warn[legality/tile-negative-dep]"));
        assert!(s.contains("seidel/gs"));
        assert!(s.contains("loop j"));
    }

    #[test]
    fn worst_level_folds() {
        assert_eq!(worst_level(&[]), None);
        let mk = |level| Diagnostic::new(level, "x/y", "k", "b", "-", "m");
        assert_eq!(
            worst_level(&[mk(LintLevel::Info), mk(LintLevel::Warn)]),
            Some(LintLevel::Warn)
        );
        assert_eq!(
            worst_level(&[mk(LintLevel::Error), mk(LintLevel::Info)]),
            Some(LintLevel::Error)
        );
    }
}
