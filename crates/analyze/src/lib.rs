//! Static dependence, legality and invariant analysis for the SPAPT
//! loop-nest IR.
//!
//! The tuning spaces the simulator exposes are *syntactic*: every
//! combination of tile/unroll/regtile/scalar-replace/vector parameters is a
//! point, whether or not a real compiler could apply it without changing
//! the program's meaning. This crate recovers the missing semantics:
//!
//! - [`dependence`] computes data-dependence direction/distance vectors
//!   between the affine array references of a nest;
//! - [`legality`] turns them into per-loop
//!   [`BlockLegality`](pwu_spapt::transform::BlockLegality) masks for the
//!   five transformation kinds;
//! - [`validate`] checks IR, machine-model and parameter-space invariants
//!   (array bounds vs. subscript ranges, degenerate extents, non-finite
//!   predicted times, out-of-space pool configurations);
//! - [`lint`] assembles per-kernel [`KernelReport`]s, the 18-kernel
//!   diagnostic table, and [`legalize`], which attaches the masks to a
//!   kernel so the tuning loop can exclude illegal configurations;
//! - [`diagnostics`] defines the machine-readable [`Diagnostic`] records
//!   (severity, stable rule id, kernel/block/loop provenance).
//!
//! The `pwu-lint` binary walks all 18 kernels, prints the table and exits
//! non-zero on any Error-level finding — `cargo xtask lint` runs it in CI.
//!
//! **Limits.** The analysis is affine-only (every subscript is
//! `Σ cₖ·iₖ + o` with constant coefficients), extents are concrete numbers
//! (no symbolic sizes), and coupled or non-uniform subscripts degrade to
//! conservative "every direction possible" patterns rather than exact
//! distances. See `DESIGN.md` ("Static analysis & legality").

pub mod dependence;
pub mod diagnostics;
pub mod legality;
pub mod lint;
pub mod validate;

pub use dependence::{analyze_dependences, DepKind, Dependence, Direction};
pub use diagnostics::{worst_level, Diagnostic, LintLevel};
pub use legality::block_legality;
pub use lint::{legalize, lint_kernel, lint_suite, render_table, KernelReport};
pub use validate::{validate_kernel_model, validate_nest, validate_pool};
