//! `pwu-lint`: the suite-wide static-analysis gate.
//!
//! Walks all 18 SPAPT kernels (the paper's 12 plus the extended suite),
//! runs the dependence/legality/invariant analysis on each, prints the
//! per-kernel diagnostic table, and exits non-zero when any Error-level
//! finding exists. Pass `-v`/`--verbose` to list every diagnostic instead
//! of only Warn-and-above.

use std::process::ExitCode;

use pwu_analyze::{lint_suite, render_table, LintLevel};

fn main() -> ExitCode {
    let mut verbose = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-v" | "--verbose" => verbose = true,
            other => {
                eprintln!("pwu-lint: unknown argument {other:?}\n\nusage: pwu-lint [-v|--verbose]");
                return ExitCode::FAILURE;
            }
        }
    }

    let reports = lint_suite();
    print!("{}", render_table(&reports));
    println!();

    let floor = if verbose {
        LintLevel::Info
    } else {
        LintLevel::Warn
    };
    let mut n_errors = 0usize;
    for report in &reports {
        for d in &report.diagnostics {
            if d.level == LintLevel::Error {
                n_errors += 1;
            }
            if d.level >= floor {
                println!("{d}");
            }
        }
    }

    let totals: (usize, usize, usize) = reports.iter().fold((0, 0, 0), |acc, r| {
        (
            acc.0 + r.count(LintLevel::Error),
            acc.1 + r.count(LintLevel::Warn),
            acc.2 + r.count(LintLevel::Info),
        )
    });
    println!();
    println!(
        "{} kernels: {} error(s), {} warning(s), {} info",
        reports.len(),
        totals.0,
        totals.1,
        totals.2
    );

    if n_errors > 0 {
        eprintln!("pwu-lint: {n_errors} error-level finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
