//! Data-dependence analysis over affine loop-nest accesses.
//!
//! Two references to the same array *depend* on each other when some pair
//! of iteration vectors makes them touch the same element and at least one
//! of them writes. For the IR's affine references (`pwu_spapt::ir::LinIndex`
//! is `Σ cₖ·iₖ + o`), the difference `D = J − I` between the target and
//! source iteration vectors satisfies one linear equation per array
//! dimension. This module solves those equations conservatively:
//!
//! - a dimension whose coefficient vectors match on both sides and mention
//!   a single loop pins that loop's difference exactly (or proves the pair
//!   independent when the offset gap is not divisible, conflicts with
//!   another dimension, or exceeds the loop extent);
//! - a dimension mentioning several loops, or with mismatched coefficients
//!   (`lu`'s non-uniform accesses), leaves the mentioned loops *free* —
//!   every direction is assumed possible;
//! - loops mentioned by no dimension (reduction loops) are free.
//!
//! Every lexicographically positive sign assignment of the resulting
//! pattern becomes one [`Dependence`] with a full direction vector, so the
//! legality rules in [`crate::legality`] can quantify exactly over the
//! instances the analysis could not exclude.

use std::collections::HashMap;

use pwu_spapt::ir::{ArrayRef, LoopNest};

/// Kind of a dependence, by the access kinds of its source and target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write before read (true dependence).
    Flow,
    /// Read before write.
    Anti,
    /// Write before write.
    Output,
}

impl DepKind {
    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Flow => "flow",
            Self::Anti => "anti",
            Self::Output => "output",
        }
    }
}

/// Direction of a dependence in one loop: the sign of `target − source`
/// for that loop's iteration index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<`: the target iterates later (positive distance).
    Lt,
    /// `=`: same iteration of this loop.
    Eq,
    /// `>`: the target iterates *earlier* in this loop (an outer loop
    /// carries the dependence).
    Gt,
}

impl Direction {
    /// The conventional `<`/`=`/`>` notation.
    #[must_use]
    pub fn symbol(self) -> char {
        match self {
            Self::Lt => '<',
            Self::Eq => '=',
            Self::Gt => '>',
        }
    }
}

/// One dependence instance: a feasible, lexicographically positive
/// direction vector between two references of the same array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Flow, anti or output.
    pub kind: DepKind,
    /// Index of the array in the nest's declarations.
    pub array: usize,
    /// Per-loop direction, outermost first. The first non-`=` entry is
    /// always `<` (lexicographic positivity).
    pub dirs: Vec<Direction>,
    /// The exact distance vector, when every component was pinned.
    pub distance: Option<Vec<i64>>,
    /// False when the pair was non-uniform and the directions are a
    /// conservative over-approximation.
    pub exact: bool,
    /// True for a flow dependence between a read and a write with
    /// *identical* index expressions — the recognizable reduction pattern
    /// (`C[i][j] += …`), which compilers vectorize via reassociation.
    pub reduction: bool,
}

impl Dependence {
    /// The loop that carries this dependence: the outermost loop with a
    /// `<` direction (it exists — the all-`=` vector is never stored).
    ///
    /// # Panics
    /// Panics on a malformed all-`=` vector, which this module never
    /// produces.
    #[must_use]
    pub fn carrier(&self) -> usize {
        self.dirs
            .iter()
            .position(|&d| d != Direction::Eq)
            .expect("dependence vectors are never all-'='")
    }

    /// Renders the direction vector as e.g. `(<, =, >)`.
    #[must_use]
    pub fn dirs_string(&self) -> String {
        let syms: Vec<String> = self.dirs.iter().map(|d| d.symbol().to_string()).collect();
        format!("({})", syms.join(", "))
    }
}

/// Per-loop difference pattern between two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Component {
    /// The difference in this loop is exactly this value.
    Exact(i64),
    /// Unconstrained: any difference within the loop extent is possible.
    Free,
}

/// Solves for the difference pattern `D = J − I` between `src@I` and
/// `dst@J` touching the same element. `None` means provably independent.
/// The second result is false when a non-uniform dimension forced a
/// conservative over-approximation.
fn pattern(src: &ArrayRef, dst: &ArrayRef, nest: &LoopNest) -> Option<(Vec<Component>, bool)> {
    let depth = nest.depth();
    let mut comps = vec![Component::Free; depth];
    let mut pinned = vec![false; depth];
    let mut exact = true;
    if src.index.len() != dst.index.len() {
        // Malformed pair; never dependent through mismatched ranks.
        return None;
    }
    for (s, d) in src.index.iter().zip(&dst.index) {
        if s.coeffs == d.coeffs {
            // Uniform dimension: Σ cₖ·Dₖ = o_src − o_dst.
            let rhs = s.offset - d.offset;
            let nonzero: Vec<usize> = (0..depth).filter(|&k| s.coeffs[k] != 0).collect();
            match nonzero.as_slice() {
                [] => {
                    if rhs != 0 {
                        return None; // distinct constant elements
                    }
                }
                [k] => {
                    let c = s.coeffs[*k];
                    if rhs % c != 0 {
                        return None; // offset gap not reachable
                    }
                    let val = rhs / c;
                    if val.unsigned_abs() >= nest.loops[*k].extent {
                        return None; // distance exceeds the iteration space
                    }
                    match comps[*k] {
                        Component::Exact(v) if pinned[*k] => {
                            if v != val {
                                return None; // dimensions disagree
                            }
                        }
                        _ => {
                            comps[*k] = Component::Exact(val);
                            pinned[*k] = true;
                        }
                    }
                }
                many => {
                    // Coupled subscript (e.g. A[i + j]): leave every
                    // mentioned loop free unless already pinned exactly.
                    for &k in many {
                        if !pinned[k] {
                            comps[k] = Component::Free;
                        }
                    }
                    exact = false;
                }
            }
        } else {
            // Non-uniform dimension (lu's A[k][j] vs A[i][k]): every loop
            // either side mentions could take any difference.
            for k in 0..depth {
                if (s.coeffs[k] != 0 || d.coeffs[k] != 0) && !pinned[k] {
                    comps[k] = Component::Free;
                }
            }
            exact = false;
        }
    }
    Some((comps, exact))
}

/// Enumerates every lexicographically positive direction vector consistent
/// with `comps` (the all-`=` vector is excluded: loop-independent
/// dependences do not constrain the transformations modeled here, which
/// preserve statement order within an iteration).
fn enumerate_dirs(comps: &[Component], nest: &LoopNest) -> Vec<Vec<Direction>> {
    let per_loop: Vec<Vec<Direction>> = comps
        .iter()
        .zip(&nest.loops)
        .map(|(c, l)| match c {
            Component::Exact(v) if *v > 0 => vec![Direction::Lt],
            Component::Exact(v) if *v < 0 => vec![Direction::Gt],
            Component::Exact(_) => vec![Direction::Eq],
            Component::Free if l.extent <= 1 => vec![Direction::Eq],
            Component::Free => vec![Direction::Lt, Direction::Eq, Direction::Gt],
        })
        .collect();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(comps.len());
    expand(&per_loop, &mut current, &mut out);
    out
}

/// Depth-first cartesian product keeping only lex-positive vectors.
fn expand(
    per_loop: &[Vec<Direction>],
    current: &mut Vec<Direction>,
    out: &mut Vec<Vec<Direction>>,
) {
    if current.len() == per_loop.len() {
        if current.contains(&Direction::Lt) || current.contains(&Direction::Gt) {
            out.push(current.clone());
        }
        return;
    }
    let all_eq_so_far = current.iter().all(|&d| d == Direction::Eq);
    for &d in &per_loop[current.len()] {
        // Lexicographic positivity: the first non-'=' must be '<'.
        if all_eq_so_far && d == Direction::Gt {
            continue;
        }
        current.push(d);
        expand(per_loop, current, out);
        current.pop();
    }
}

/// Analyzes every same-array reference pair of `nest` and returns the
/// deduplicated dependence instances, outermost-loop direction first.
#[must_use]
pub fn analyze_dependences(nest: &LoopNest) -> Vec<Dependence> {
    // Collect (is_write, ref) over all statements, writes first so flow
    // dependences are discovered in write→read orientation.
    let refs: Vec<(bool, &ArrayRef)> = nest
        .stmts
        .iter()
        .flat_map(|s| {
            s.writes
                .iter()
                .map(|w| (true, w))
                .chain(s.reads.iter().map(|r| (false, r)))
        })
        .collect();

    let mut deps: Vec<Dependence> = Vec::new();
    let mut seen: HashMap<(DepKind, usize, Vec<Direction>), usize> = HashMap::new();
    let mut emit = |src: (bool, &ArrayRef), dst: (bool, &ArrayRef)| {
        let Some((comps, exact)) = pattern(src.1, dst.1, nest) else {
            return;
        };
        let kind = match (src.0, dst.0) {
            (true, true) => DepKind::Output,
            (true, false) => DepKind::Flow,
            (false, true) => DepKind::Anti,
            (false, false) => return,
        };
        let distance: Option<Vec<i64>> = comps
            .iter()
            .map(|c| match c {
                Component::Exact(v) => Some(*v),
                Component::Free => None,
            })
            .collect();
        let reduction = kind == DepKind::Flow && src.1.index == dst.1.index;
        for dirs in enumerate_dirs(&comps, nest) {
            let key = (kind, src.1.array, dirs.clone());
            if let Some(&i) = seen.get(&key) {
                // Keep the more severe flags across duplicate instances.
                deps[i].reduction &= reduction;
                deps[i].exact &= exact;
                continue;
            }
            seen.insert(key, deps.len());
            deps.push(Dependence {
                kind,
                array: src.1.array,
                dirs,
                distance: distance.clone(),
                exact,
                reduction,
            });
        }
    };

    for i in 0..refs.len() {
        for j in i..refs.len() {
            let (a, b) = (refs[i], refs[j]);
            if a.1.array != b.1.array || (!a.0 && !b.0) {
                continue;
            }
            emit(a, b);
            if i != j {
                emit(b, a);
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_spapt::ir::{ArrayDecl, LinIndex, LoopDim, Statement};

    fn dims(names: &[&str], extent: u64) -> Vec<LoopDim> {
        names
            .iter()
            .map(|n| LoopDim {
                name: (*n).into(),
                extent,
            })
            .collect()
    }

    /// `C[i][j] += A[i][k] * B[k][j]` — the gemm accumulation.
    fn gemm_nest() -> LoopNest {
        let nl = 3;
        let v = |l| LinIndex::var(nl, l);
        LoopNest {
            loops: dims(&["i", "j", "k"], 64),
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(0), v(2)]),
                    ArrayRef::new(1, vec![v(2), v(1)]),
                    ArrayRef::new(2, vec![v(0), v(1)]),
                ],
                writes: vec![ArrayRef::new(2, vec![v(0), v(1)])],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![64, 64]),
                ArrayDecl::doubles("B", vec![64, 64]),
                ArrayDecl::doubles("C", vec![64, 64]),
            ],
        }
    }

    /// In-place sweep `A[i][j] = f(A[i-1][j+1], A[i][j])`: carries the
    /// classic (1, -1) dependence that breaks unroll-jam and inner tiling.
    fn skewed_nest() -> LoopNest {
        let nl = 2;
        let v = |l| LinIndex::var(nl, l);
        LoopNest {
            loops: dims(&["i", "j"], 100),
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(0), v(1)]),
                    ArrayRef::new(
                        0,
                        vec![LinIndex::var_plus(nl, 0, -1), LinIndex::var_plus(nl, 1, 1)],
                    ),
                ],
                writes: vec![ArrayRef::new(0, vec![v(0), v(1)])],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("A", vec![100, 100])],
        }
    }

    #[test]
    fn gemm_reduction_dependences_are_innermost_carried() {
        let deps = analyze_dependences(&gemm_nest());
        // Flow, anti and output on C, all with direction (=, =, <).
        assert_eq!(deps.len(), 3);
        for d in &deps {
            assert_eq!(d.array, 2);
            assert_eq!(
                d.dirs,
                vec![Direction::Eq, Direction::Eq, Direction::Lt],
                "{:?}",
                d.kind
            );
            assert_eq!(d.carrier(), 2);
            assert!(d.exact);
        }
        let flow = deps.iter().find(|d| d.kind == DepKind::Flow).unwrap();
        assert!(flow.reduction, "C[i][j] += … is a reduction");
        assert_eq!(flow.dirs_string(), "(=, =, <)");
        assert!(deps.iter().any(|d| d.kind == DepKind::Anti));
        assert!(deps.iter().any(|d| d.kind == DepKind::Output));
    }

    #[test]
    fn skewed_stencil_has_exact_distance_vector() {
        let deps = analyze_dependences(&skewed_nest());
        // Write A[i][j] → read A[i-1][j+1]: the read at iteration
        // (i+1, j-1) sees the value written at (i, j) → flow (1, -1).
        let flow: Vec<&Dependence> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert!(
            flow.iter()
                .any(|d| d.distance == Some(vec![1, -1])
                    && d.dirs == vec![Direction::Lt, Direction::Gt]),
            "missing (1,-1) flow dep: {flow:?}"
        );
        // All dependences here are exact and none is a pure reduction with
        // distance (1, -1).
        assert!(deps.iter().all(|d| d.exact));
        for d in &deps {
            if d.distance == Some(vec![1, -1]) {
                assert!(!d.reduction);
            }
        }
    }

    #[test]
    fn out_of_place_sweep_has_no_intra_nest_dependences() {
        // jacobi-style: reads A, writes B.
        let nl = 2;
        let v = |l| LinIndex::var(nl, l);
        let nest = LoopNest {
            loops: dims(&["i", "j"], 100),
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(0), v(1)]),
                    ArrayRef::new(0, vec![LinIndex::var_plus(nl, 0, 1), v(1)]),
                ],
                writes: vec![ArrayRef::new(1, vec![v(0), v(1)])],
                adds: 1,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![101, 100]),
                ArrayDecl::doubles("B", vec![100, 100]),
            ],
        };
        assert!(analyze_dependences(&nest).is_empty());
    }

    #[test]
    fn unreachable_offsets_prove_independence() {
        // write A[2i], read A[2i+1]: parity separates them.
        let nest = LoopNest {
            loops: dims(&["i"], 50),
            stmts: vec![Statement {
                reads: vec![ArrayRef::new(
                    0,
                    vec![LinIndex {
                        coeffs: vec![2],
                        offset: 1,
                    }],
                )],
                writes: vec![ArrayRef::new(
                    0,
                    vec![LinIndex {
                        coeffs: vec![2],
                        offset: 0,
                    }],
                )],
                adds: 0,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("A", vec![101])],
        };
        let deps = analyze_dependences(&nest);
        // Read/write pairs differ by an odd offset over an even stride, and
        // the write's self-pair pins distance 0 (loop-independent, excluded).
        assert!(deps.is_empty(), "{deps:?}");
    }

    #[test]
    fn non_uniform_pairs_are_conservative() {
        // lu-like: write A[i][j], read A[k][j] with k a different loop.
        let nl = 3;
        let nest = LoopNest {
            loops: dims(&["i", "j", "k"], 32),
            stmts: vec![Statement {
                reads: vec![ArrayRef::new(
                    0,
                    vec![LinIndex::var(nl, 2), LinIndex::var(nl, 1)],
                )],
                writes: vec![ArrayRef::new(
                    0,
                    vec![LinIndex::var(nl, 0), LinIndex::var(nl, 1)],
                )],
                adds: 1,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("A", vec![32, 32])],
        };
        let deps = analyze_dependences(&nest);
        assert!(!deps.is_empty());
        // The write's self-pair (an output dependence over the free k loop)
        // stays exact; every flow/anti instance from the non-uniform
        // write↔read pair is conservative.
        assert!(deps
            .iter()
            .filter(|d| d.kind != DepKind::Output)
            .all(|d| !d.exact));
        assert!(deps.iter().any(|d| !d.exact));
        // The j component is pinned to '=' everywhere; i and k are free, so
        // some instance has a '>' in a non-leading position.
        assert!(deps.iter().all(|d| d.dirs[1] == Direction::Eq));
        assert!(deps.iter().any(|d| d.dirs.contains(&Direction::Gt)));
        // Every stored vector is lexicographically positive.
        for d in &deps {
            assert_eq!(d.dirs[d.carrier()], Direction::Lt);
            assert!(d.dirs[..d.carrier()].iter().all(|&x| x == Direction::Eq));
        }
    }
}
