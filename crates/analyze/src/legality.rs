//! Transformation-legality rules over the dependence analysis.
//!
//! [`apply`](pwu_spapt::transform::apply) builds the transformed nest as
//! three bands — tile-origin loops of every tiled loop hoisted outermost,
//! then middle-tile loops, then the point loops in original order. The
//! legality conditions below follow from that structure:
//!
//! - **Tiling loop `l`** hoists `l`'s tile loop above *all* other loops, so
//!   it is safe only when no dependence has a `>` direction in `l` (any
//!   such dependence has an instance whose reordered direction vector turns
//!   lexicographically negative at a tile boundary). This is the classic
//!   full-permutability condition, applied per loop.
//! - **Unroll-jamming loop `l`** fuses consecutive `l`-iterations into one
//!   body, executing iteration `(l+1, m)` before `(l, m′)` for `m < m′`. A
//!   dependence carried by `l` with a `>` direction in some inner loop is
//!   then violated. The innermost loop has no inner loops — always safe.
//! - **Register tiling** is a second unroll-jam level: same rule.
//! - **Vectorizing** the innermost loop executes its iterations as one
//!   wide operation: a flow dependence carried by it is a hard violation —
//!   except the recognizable reduction pattern (`C[i][j] += …`), which
//!   compilers handle by reassociation and we only flag. Anti/output
//!   dependences carried by it are likewise flag-only (hardware gathers
//!   sources before stores retire).
//! - **Scalar replacement** hoists innermost-invariant reads into scalars;
//!   it goes stale only if the array is also written through a *different*
//!   index expression inside the nest.

use pwu_spapt::ir::LoopNest;
use pwu_spapt::transform::BlockLegality;

use crate::dependence::{analyze_dependences, DepKind, Dependence, Direction};
use crate::diagnostics::{Diagnostic, LintLevel};

/// Derives the legality mask for one nest (see the module docs for the
/// rules). Returns the mask and one diagnostic per restriction.
#[must_use]
pub fn block_legality(
    kernel: &str,
    block: &str,
    nest: &LoopNest,
) -> (BlockLegality, Vec<Diagnostic>) {
    let deps = analyze_dependences(nest);
    legality_from_deps(kernel, block, nest, &deps)
}

/// [`block_legality`] over pre-computed dependences.
#[must_use]
pub fn legality_from_deps(
    kernel: &str,
    block: &str,
    nest: &LoopNest,
    deps: &[Dependence],
) -> (BlockLegality, Vec<Diagnostic>) {
    let depth = nest.depth();
    if depth == 0 {
        return (BlockLegality::permissive(0), Vec::new());
    }
    let innermost = depth - 1;
    let mut mask = BlockLegality::permissive(depth);
    let mut diags = Vec::new();
    let loop_name = |l: usize| nest.loops[l].name.clone();
    let array_name = |a: usize| nest.arrays[a].name.clone();
    let describe = |d: &Dependence| {
        format!(
            "{} dependence on {} with directions {}{}",
            d.kind.name(),
            array_name(d.array),
            d.dirs_string(),
            if d.exact { "" } else { " (conservative)" },
        )
    };

    // Tiling: no '>' direction in a tiled loop.
    for l in 0..depth {
        if let Some(d) = deps.iter().find(|d| d.dirs[l] == Direction::Gt) {
            mask.tile_ok[l] = false;
            diags.push(Diagnostic::new(
                LintLevel::Warn,
                "legality/tile-negative-dep",
                kernel,
                block,
                format!("loop {}", loop_name(l)),
                format!(
                    "tiling would hoist this loop across a {}; tile requests are clamped off",
                    describe(d)
                ),
            ));
        }
    }

    // Unroll-jam / register tiling: a dependence carried by `l` must not
    // have a '>' direction in any loop nested inside `l`.
    for l in 0..innermost {
        let violating = deps
            .iter()
            .find(|d| d.carrier() == l && d.dirs[l + 1..].contains(&Direction::Gt));
        if let Some(d) = violating {
            mask.unroll_ok[l] = false;
            mask.regtile_ok[l] = false;
            diags.push(Diagnostic::new(
                LintLevel::Warn,
                "legality/unroll-jam-carried-dep",
                kernel,
                block,
                format!("loop {}", loop_name(l)),
                format!(
                    "unroll-jam would fuse iterations across a {}; unroll/regtile requests are clamped to 1",
                    describe(d)
                ),
            ));
        }
    }

    // Vectorization of the innermost loop.
    if let Some(d) = deps
        .iter()
        .find(|d| d.kind == DepKind::Flow && !d.reduction && d.carrier() == innermost)
    {
        mask.vectorize_ok = false;
        mask.vectorize_clean = false;
        diags.push(Diagnostic::new(
            LintLevel::Warn,
            "legality/vectorize-flow-dep",
            kernel,
            block,
            format!("loop {}", loop_name(innermost)),
            format!(
                "the innermost loop carries a {}; vector requests are clamped off",
                describe(d)
            ),
        ));
    } else if let Some(d) = deps.iter().find(|d| d.carrier() == innermost) {
        mask.vectorize_clean = false;
        diags.push(Diagnostic::new(
            LintLevel::Info,
            "legality/vectorize-carried-dep",
            kernel,
            block,
            format!("loop {}", loop_name(innermost)),
            format!(
                "the innermost loop carries a {}; vector requests are honored but flagged",
                describe(d)
            ),
        ));
    }

    // Scalar replacement: an innermost-invariant read goes stale if its
    // array is written through a different index expression.
    'scalar: for stmt in &nest.stmts {
        for r in &stmt.reads {
            if !r.invariant_in(innermost) {
                continue;
            }
            let stale = nest
                .stmts
                .iter()
                .flat_map(|s| &s.writes)
                .find(|w| w.array == r.array && w.index != r.index);
            if let Some(w) = stale {
                mask.scalar_replace_ok = false;
                diags.push(Diagnostic::new(
                    LintLevel::Warn,
                    "legality/scalar-replace-stale",
                    kernel,
                    block,
                    format!("array {}", array_name(r.array)),
                    format!(
                        "a hoisted read of {} would miss writes through a \
                         different subscript (ref dims {} vs {}); scalar-replace requests are clamped off",
                        array_name(r.array),
                        r.index.len(),
                        w.index.len(),
                    ),
                ));
                break 'scalar;
            }
        }
    }

    (mask, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_space::ConfigLegality;
    use pwu_spapt::ir::{ArrayDecl, ArrayRef, LinIndex, LoopDim, Statement};
    use pwu_spapt::transform::BlockTransform;

    fn dims(names: &[&str], extent: u64) -> Vec<LoopDim> {
        names
            .iter()
            .map(|n| LoopDim {
                name: (*n).into(),
                extent,
            })
            .collect()
    }

    /// gemm: everything legal except that vector requests are flag-only
    /// (reduction over k).
    #[test]
    fn gemm_is_fully_tileable_and_jam_safe() {
        let nl = 3;
        let v = |l| LinIndex::var(nl, l);
        let nest = LoopNest {
            loops: dims(&["i", "j", "k"], 64),
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(0), v(2)]),
                    ArrayRef::new(1, vec![v(2), v(1)]),
                    ArrayRef::new(2, vec![v(0), v(1)]),
                ],
                writes: vec![ArrayRef::new(2, vec![v(0), v(1)])],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![
                ArrayDecl::doubles("A", vec![64, 64]),
                ArrayDecl::doubles("B", vec![64, 64]),
                ArrayDecl::doubles("C", vec![64, 64]),
            ],
        };
        let (mask, diags) = block_legality("gemm", "mm", &nest);
        assert!(mask.tile_ok.iter().all(|&b| b));
        assert!(mask.unroll_ok.iter().all(|&b| b));
        assert!(mask.regtile_ok.iter().all(|&b| b));
        assert!(mask.scalar_replace_ok);
        assert!(mask.vectorize_ok, "reduction flow is not a hard error");
        assert!(!mask.vectorize_clean, "but it is flagged");
        assert!(diags
            .iter()
            .all(|d| d.level < LintLevel::Warn || d.rule.starts_with("legality/")));
    }

    /// The skewed in-place sweep `A[i][j] = f(A[i-1][j+1], …)`: unroll-jam
    /// of `i` and tiling of `j` are illegal — the issue's required
    /// known-illegal case.
    #[test]
    fn skewed_dependence_blocks_unroll_jam_and_inner_tiling() {
        let nl = 2;
        let v = |l| LinIndex::var(nl, l);
        let nest = LoopNest {
            loops: dims(&["i", "j"], 100),
            stmts: vec![Statement {
                reads: vec![
                    ArrayRef::new(0, vec![v(0), v(1)]),
                    ArrayRef::new(
                        0,
                        vec![LinIndex::var_plus(nl, 0, -1), LinIndex::var_plus(nl, 1, 1)],
                    ),
                ],
                writes: vec![ArrayRef::new(0, vec![v(0), v(1)])],
                adds: 1,
                muls: 1,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("A", vec![100, 100])],
        };
        let (mask, diags) = block_legality("skewed", "sw", &nest);
        // The (1, -1) dependence: '>' in j forbids tiling j; carried by i
        // with '>' inside forbids unroll-jamming i.
        assert!(mask.tile_ok[0], "tiling i alone is strip-mining-safe");
        assert!(!mask.tile_ok[1], "tiling j reorders across (1, -1)");
        assert!(!mask.unroll_ok[0], "unroll-jam of i is illegal");
        assert!(mask.unroll_ok[1], "innermost unroll is always legal");
        assert!(!mask.regtile_ok[0]);
        assert!(diags.iter().any(|d| d.rule == "legality/tile-negative-dep"));
        assert!(diags
            .iter()
            .any(|d| d.rule == "legality/unroll-jam-carried-dep"));

        // End-to-end: an unroll-jam request on i classifies as Illegal and
        // clamps to the identity.
        let mut t = BlockTransform::identity(2);
        t.unroll[0] = 4;
        assert_eq!(mask.classify(&t), ConfigLegality::Illegal);
        let (clamped, changed) = mask.clamp(&t);
        assert!(changed);
        assert_eq!(clamped, BlockTransform::identity(2));
    }

    /// A nest where scalar replacement would go stale: read `first[0]`
    /// (innermost-invariant) while writing `first[i]`.
    #[test]
    fn stale_scalar_replacement_is_detected() {
        let nest = LoopNest {
            loops: dims(&["i"], 64),
            stmts: vec![Statement {
                reads: vec![ArrayRef::new(0, vec![LinIndex::constant(1, 0)])],
                writes: vec![ArrayRef::new(0, vec![LinIndex::var(1, 0)])],
                adds: 1,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("first", vec![64])],
        };
        let (mask, diags) = block_legality("toy", "b", &nest);
        assert!(!mask.scalar_replace_ok);
        assert!(diags
            .iter()
            .any(|d| d.rule == "legality/scalar-replace-stale"));
    }
}
