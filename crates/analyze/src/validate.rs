//! IR, machine-model and parameter-space invariant checks.
//!
//! Complements the dependence-based legality rules with sanity checks that
//! catch *defects* rather than restrictions: array accesses that run past
//! their declared bounds (beyond the small halo stencil kernels lean on),
//! degenerate loop extents, non-finite or non-positive predicted times from
//! the machine model, tile values the extents will always clamp, and pool
//! configurations outside the declared parameter space.

use pwu_space::{Configuration, TuningTarget};
use pwu_spapt::cost::estimate_time;
use pwu_spapt::ir::{LinIndex, LoopNest};
use pwu_spapt::transform::BlockTransform;
use pwu_spapt::Kernel;

use crate::diagnostics::{Diagnostic, LintLevel};

/// Largest per-side out-of-bounds distance tolerated as a stencil halo
/// before it escalates from Warn to Error.
pub const HALO_TOLERANCE: i128 = 2;

/// Range of a [`LinIndex`] over the iteration domain `0..extent` per loop.
fn index_range(ix: &LinIndex, nest: &LoopNest) -> (i128, i128) {
    let mut lo = i128::from(ix.offset);
    let mut hi = lo;
    for (c, l) in ix.coeffs.iter().zip(&nest.loops) {
        let span = i128::from(*c) * i128::from(l.extent.saturating_sub(1));
        if span >= 0 {
            hi += span;
        } else {
            lo += span;
        }
    }
    (lo, hi)
}

/// Checks one nest's structural invariants: loop extents and array bounds.
#[must_use]
pub fn validate_nest(kernel: &str, block: &str, nest: &LoopNest) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for l in &nest.loops {
        if l.extent == 0 {
            diags.push(Diagnostic::new(
                LintLevel::Error,
                "ir/zero-extent",
                kernel,
                block,
                format!("loop {}", l.name),
                "loop extent is 0: the nest never executes",
            ));
        } else if l.extent == 1 {
            diags.push(Diagnostic::new(
                LintLevel::Info,
                "ir/degenerate-loop",
                kernel,
                block,
                format!("loop {}", l.name),
                "loop extent is 1: tiling/unroll parameters for it are dead",
            ));
        }
    }
    for stmt in &nest.stmts {
        for r in stmt.reads.iter().chain(&stmt.writes) {
            let decl = &nest.arrays[r.array];
            if r.index.len() != decl.dims.len() {
                diags.push(Diagnostic::new(
                    LintLevel::Error,
                    "ir/rank-mismatch",
                    kernel,
                    block,
                    format!("array {}", decl.name),
                    format!(
                        "reference has {} subscripts but the array has {} dims",
                        r.index.len(),
                        decl.dims.len()
                    ),
                ));
                continue;
            }
            for (d, (ix, &dim)) in r.index.iter().zip(&decl.dims).enumerate() {
                let (lo, hi) = index_range(ix, nest);
                let under = -lo.min(0);
                let over = (hi - (i128::from(dim) - 1)).max(0);
                let worst = under.max(over);
                if worst == 0 {
                    continue;
                }
                let (level, rule) = if worst <= HALO_TOLERANCE {
                    (LintLevel::Warn, "ir/stencil-halo")
                } else {
                    (LintLevel::Error, "ir/bounds-overrun")
                };
                diags.push(Diagnostic::new(
                    level,
                    rule,
                    kernel,
                    block,
                    format!("array {}", decl.name),
                    format!(
                        "dim {d}: subscript spans {lo}..={hi} against extent {dim} \
                         ({worst} element(s) out of bounds)"
                    ),
                ));
            }
        }
    }
    diags
}

/// Probes the machine model with boundary transformations and reports any
/// non-finite or non-positive predicted time.
#[must_use]
pub fn validate_kernel_model(kernel: &Kernel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for block in kernel.blocks() {
        let depth = block.nest.depth();
        let mut extreme = BlockTransform {
            tiles: vec![(512, 64); depth],
            unroll: vec![31; depth],
            regtile: vec![32; depth],
            scalar_replace: true,
            vectorize: true,
        };
        // A mid-range tiling exercises the partial-tile paths.
        if depth > 1 {
            extreme.tiles[depth - 1] = (128, 16);
        }
        for (probe_name, t) in [
            ("identity", BlockTransform::identity(depth)),
            ("extreme", extreme),
        ] {
            let time = estimate_time(&block.nest, &t, kernel.machine());
            if !time.is_finite() || time <= 0.0 {
                diags.push(Diagnostic::new(
                    LintLevel::Error,
                    "model/bad-time",
                    kernel.name(),
                    block.label,
                    format!("probe {probe_name}"),
                    format!("machine model predicted {time} s (must be finite and positive)"),
                ));
            }
        }
    }
    diags
}

/// Reports tile parameters whose largest value exceeds the loop extent
/// (the transform clamps them, so the parameter's upper levels alias).
#[must_use]
pub fn validate_kernel_space(kernel: &Kernel) -> Vec<Diagnostic> {
    let max_tile = pwu_spapt::kernels::TILE_VALUES
        .iter()
        .copied()
        .fold(0.0f64, f64::max) as u64;
    let mut diags = Vec::new();
    for block in kernel.blocks() {
        for &l in &block.tiled {
            let extent = block.nest.loops[l].extent;
            if extent < max_tile {
                diags.push(Diagnostic::new(
                    LintLevel::Info,
                    "space/tile-exceeds-extent",
                    kernel.name(),
                    block.label,
                    format!("loop {}", block.nest.loops[l].name),
                    format!(
                        "largest tile value {max_tile} exceeds the loop extent {extent}; \
                         upper tile levels alias after clamping"
                    ),
                ));
            }
        }
    }
    diags
}

/// Validates pool configurations against a target's declared space:
/// dimension count and per-parameter level ranges.
#[must_use]
pub fn validate_pool(target: &dyn TuningTarget, configs: &[Configuration]) -> Vec<Diagnostic> {
    let space = target.space();
    let mut diags = Vec::new();
    for (i, cfg) in configs.iter().enumerate() {
        if cfg.len() != space.dim() {
            diags.push(Diagnostic::new(
                LintLevel::Error,
                "space/config-rank-mismatch",
                target.name(),
                "-",
                format!("pool[{i}]"),
                format!(
                    "configuration has {} levels but the space has {} parameters",
                    cfg.len(),
                    space.dim()
                ),
            ));
            continue;
        }
        for (p, param) in space.params().iter().enumerate() {
            let level = cfg.level(p) as usize;
            if level >= param.arity() {
                diags.push(Diagnostic::new(
                    LintLevel::Error,
                    "space/config-out-of-range",
                    target.name(),
                    "-",
                    format!("pool[{i}].{}", param.name()),
                    format!(
                        "level {level} outside the domain of {} values",
                        param.arity()
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwu_spapt::ir::{ArrayDecl, ArrayRef, LoopDim, Statement};
    use pwu_spapt::kernel_by_name;

    #[test]
    fn in_bounds_accesses_are_clean() {
        let mm = kernel_by_name("mm").expect("mm exists");
        for b in mm.blocks() {
            assert!(validate_nest("mm", b.label, &b.nest).is_empty());
        }
    }

    #[test]
    fn stencil_halo_warns_but_larger_overruns_error() {
        let mk = |offset: i64| LoopNest {
            loops: vec![LoopDim {
                name: "i".into(),
                extent: 100,
            }],
            stmts: vec![Statement {
                reads: vec![ArrayRef::new(0, vec![LinIndex::var_plus(1, 0, offset)])],
                writes: vec![],
                adds: 0,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("A", vec![100])],
        };
        let halo = validate_nest("k", "b", &mk(1));
        assert_eq!(halo.len(), 1);
        assert_eq!(halo[0].rule, "ir/stencil-halo");
        assert_eq!(halo[0].level, LintLevel::Warn);

        let overrun = validate_nest("k", "b", &mk(7));
        assert_eq!(overrun.len(), 1);
        assert_eq!(overrun[0].rule, "ir/bounds-overrun");
        assert_eq!(overrun[0].level, LintLevel::Error);

        let under = validate_nest("k", "b", &mk(-5));
        assert_eq!(under[0].rule, "ir/bounds-overrun");
    }

    #[test]
    fn degenerate_extents_are_reported() {
        let nest = LoopNest {
            loops: vec![
                LoopDim {
                    name: "i".into(),
                    extent: 1,
                },
                LoopDim {
                    name: "j".into(),
                    extent: 8,
                },
            ],
            stmts: vec![Statement {
                reads: vec![],
                writes: vec![ArrayRef::new(
                    0,
                    vec![LinIndex::var(2, 0), LinIndex::var(2, 1)],
                )],
                adds: 0,
                muls: 0,
                divs: 0,
            }],
            arrays: vec![ArrayDecl::doubles("A", vec![1, 8])],
        };
        let diags = validate_nest("k", "b", &nest);
        assert!(diags
            .iter()
            .any(|d| d.rule == "ir/degenerate-loop" && d.level == LintLevel::Info));
    }

    #[test]
    fn machine_model_probes_are_finite_on_the_suite() {
        for k in pwu_spapt::all_kernels() {
            assert!(
                validate_kernel_model(&k).is_empty(),
                "{} model probe failed",
                k.name()
            );
        }
    }

    #[test]
    fn small_extents_report_tile_aliasing() {
        let tensor = kernel_by_name("tensor").expect("tensor exists");
        let diags = validate_kernel_space(&tensor);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "space/tile-exceeds-extent" && d.level == LintLevel::Info),
            "tensor's extent-120 loops alias 128..512 tiles"
        );
    }

    #[test]
    fn pool_validation_catches_bad_configs() {
        let mm = kernel_by_name("mm").expect("mm exists");
        let dim = pwu_space::TuningTarget::space(&mm).dim();
        let good = Configuration::new(vec![0; dim]);
        let short = Configuration::new(vec![0; dim - 1]);
        let wild = Configuration::new(
            std::iter::once(200)
                .chain(std::iter::repeat_n(0, dim - 1))
                .collect(),
        );
        assert!(validate_pool(&mm, std::slice::from_ref(&good)).is_empty());
        let diags = validate_pool(&mm, &[good, short, wild]);
        assert!(diags.iter().any(|d| d.rule == "space/config-rank-mismatch"));
        assert!(diags.iter().any(|d| d.rule == "space/config-out-of-range"));
        assert!(diags.iter().all(|d| d.level == LintLevel::Error));
    }
}
