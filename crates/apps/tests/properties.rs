//! Property-based tests for the application models.

use proptest::prelude::*;
use pwu_apps::{Hypre, Kripke, LogGp};
use pwu_space::{Configuration, TuningTarget};
use pwu_stats::Xoshiro256PlusPlus;

proptest! {
    /// LogGP times are positive and monotone in message size.
    #[test]
    fn p2p_monotone_in_size(a in 0.0f64..1e7, b in 0.0f64..1e7) {
        for net in [LogGp::omnipath(), LogGp::shared_memory()] {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(net.p2p(lo) > 0.0);
            prop_assert!(net.p2p(lo) <= net.p2p(hi) + 1e-15);
        }
    }

    /// Allreduce grows (weakly) with rank count and payload.
    #[test]
    fn allreduce_monotone(p1 in 1u32..512, p2 in 1u32..512, bytes in 1.0f64..1e6) {
        let net = LogGp::omnipath();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(net.allreduce(lo, bytes) <= net.allreduce(hi, bytes) + 1e-15);
        prop_assert!(net.allreduce(hi, bytes) <= net.allreduce(hi, bytes * 2.0) + 1e-15);
    }

    /// Every kripke configuration has a finite positive time and the noisy
    /// measurement stays within a plausible envelope.
    #[test]
    fn kripke_surface_well_behaved(seed in 0u64..10_000) {
        let k = Kripke::new();
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let cfg = k.space().sample(&mut rng);
        let t = k.ideal_time(&cfg);
        prop_assert!(t.is_finite() && t > 0.0);
        let m = k.measure(&cfg, &mut rng);
        prop_assert!(m > t * 0.5 && m < t * 2.0);
    }

    /// Every hypre configuration terminates (iteration cap) with a finite
    /// positive time.
    #[test]
    fn hypre_surface_well_behaved(seed in 0u64..10_000) {
        let h = Hypre::new();
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let cfg = h.space().sample(&mut rng);
        let t = h.ideal_time(&cfg);
        prop_assert!(t.is_finite() && t > 0.0);
        // 500 capped iterations of a 192³ solve must stay under an hour.
        prop_assert!(t < 3600.0, "absurd hypre time {t}");
    }

    /// kripke: with everything else fixed, more group-sets never increases
    /// the pipeline-fill bubble's share (the number of blocks only grows),
    /// so timings stay finite and vary smoothly — no cliffs to NaN.
    #[test]
    fn kripke_gset_axis_is_finite_everywhere(
        layout in 0u32..6,
        dset in 0u32..3,
        pm in 0u32..2,
        p in 0u32..8,
    ) {
        let k = Kripke::new();
        let mut last = None;
        for gset in 0..8u32 {
            let t = k.ideal_time(&Configuration::new(vec![layout, gset, dset, pm, p]));
            prop_assert!(t.is_finite() && t > 0.0);
            if let Some(prev) = last {
                let ratio: f64 = t / prev;
                prop_assert!(ratio > 1e-3 && ratio < 1e3, "wild jump {prev} → {t}");
            }
            last = Some(t);
        }
    }

    /// hypre: the smtype dimension only matters for AMG-family solvers.
    #[test]
    fn hypre_smtype_inert_outside_amg(sm1 in 0u32..9, sm2 in 0u32..9, p in 0u32..7) {
        let h = Hypre::new();
        // Solver index 2 = DS-PCG (diagonal scaling, no AMG).
        let a = h.ideal_time(&Configuration::new(vec![2, 0, sm1, p]));
        let b = h.ideal_time(&Configuration::new(vec![2, 0, sm2, p]));
        prop_assert_eq!(a, b);
    }
}
