//! The cluster platform (Table IV, Platform B).

use crate::loggp::LogGp;

/// Node and fabric parameters of the application platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPlatform {
    /// Cores per node.
    pub cores_per_node: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained useful flops per core-cycle for stencil/sparse codes
    /// (memory-bound, so well under the peak of 16).
    pub flops_per_cycle: f64,
    /// Per-node sustained memory bandwidth in bytes/second, shared by all
    /// ranks on the node.
    pub node_bandwidth: f64,
    /// Inter-node network.
    pub network: LogGp,
    /// Intra-node transport.
    pub intra_node: LogGp,
}

impl ClusterPlatform {
    /// Platform B: E5-2680 v4 nodes (28 cores, 2.4 GHz) on 100 Gb/s OPA.
    #[must_use]
    pub fn platform_b() -> Self {
        Self {
            cores_per_node: 28,
            clock_ghz: 2.4,
            flops_per_cycle: 1.2,
            node_bandwidth: 68e9,
            network: LogGp::omnipath(),
            intra_node: LogGp::shared_memory(),
        }
    }

    /// Number of nodes occupied by `p` ranks (one rank per core).
    #[must_use]
    pub fn nodes_for(&self, p: u32) -> u32 {
        p.div_ceil(self.cores_per_node)
    }

    /// The transport used between ranks when `p` ranks are allocated:
    /// shared memory while everything fits one node, the fabric beyond.
    #[must_use]
    pub fn transport_for(&self, p: u32) -> LogGp {
        if self.nodes_for(p) <= 1 {
            self.intra_node
        } else {
            self.network
        }
    }

    /// Seconds for `flops` floating-point operations on one rank, assuming
    /// `ranks_on_node` ranks share the node's memory bandwidth and the code
    /// moves `bytes_per_flop` from memory per flop.
    #[must_use]
    pub fn compute_time(&self, flops: f64, bytes_per_flop: f64, ranks_on_node: u32) -> f64 {
        let flop_time = flops / (self.flops_per_cycle * self.clock_ghz * 1e9);
        let bw_share = self.node_bandwidth / f64::from(ranks_on_node.max(1));
        let mem_time = flops * bytes_per_flop / bw_share;
        flop_time.max(mem_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counting() {
        let p = ClusterPlatform::platform_b();
        assert_eq!(p.nodes_for(1), 1);
        assert_eq!(p.nodes_for(28), 1);
        assert_eq!(p.nodes_for(29), 2);
        assert_eq!(p.nodes_for(512), 19);
    }

    #[test]
    fn transport_switches_at_node_boundary() {
        let p = ClusterPlatform::platform_b();
        assert_eq!(p.transport_for(16), p.intra_node);
        assert_eq!(p.transport_for(128), p.network);
    }

    #[test]
    fn bandwidth_sharing_slows_full_nodes() {
        let p = ClusterPlatform::platform_b();
        let alone = p.compute_time(1e9, 4.0, 1);
        let packed = p.compute_time(1e9, 4.0, 28);
        assert!(packed > alone);
    }
}
