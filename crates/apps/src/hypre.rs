//! *hypre*: the `new_ij` test driver solving a 27-point 3-D Laplacian.
//!
//! Table III's parameter space: `solver` (24 ids of the real driver, each a
//! Krylov/preconditioner composition), `coarsening` (PMIS/HMIS), `smtype`
//! (the AMG relaxation type, 0–8) and the MPI process count.
//!
//! Model structure:
//!
//! - iteration counts follow linear-convergence theory: `ln(tol)/ln(ρ)`,
//!   where the convergence factor ρ composes the preconditioner's base
//!   factor, the coarsening and smoother adjustments, and Krylov
//!   acceleration; unstable compositions (e.g. nonsymmetric Gauss–Seidel
//!   relaxation inside PCG, or CGNR's squared conditioning on diagonal
//!   scaling) hit the iteration cap — the heavy tail of Table III's space;
//! - per-iteration cost is sparse-matvec work scaled by operator complexity
//!   (PMIS < HMIS) plus halo exchanges per AMG level and the Krylov dot
//!   products (allreduces);
//! - strong scaling over 8…512 ranks: bandwidth-bound node compute and a
//!   latency floor from coarse AMG levels that saturates speedup.
//!
//! The `smtype` dimension is *inert* for non-AMG solvers, exactly like the
//! real driver — a categorical irrelevance pattern the random forest must
//! discover.

use pwu_space::{Configuration, Param, ParamSpace, TuningTarget, Value};
use pwu_stats::Xoshiro256PlusPlus;

use crate::platform::ClusterPlatform;

/// Global problem: 192³ unknowns, 27 nonzeros per row.
const N: f64 = 192.0 * 192.0 * 192.0;
const NNZ_PER_ROW: f64 = 27.0;
/// Relative residual tolerance.
const TOL: f64 = 1e-8;
/// Iteration cap of the driver.
const MAX_ITERS: f64 = 500.0;
/// Cluster measurement noise.
const NOISE_SIGMA: f64 = 0.05;

/// Preconditioner families of the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Precond {
    Amg,
    Gsmg,
    DiagScale,
    Pilut,
    ParaSails,
    Schwarz,
    Euclid,
}

/// Krylov accelerators of the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Krylov {
    None,
    Pcg,
    Gmres,
    BiCgStab,
    Cgnr,
    LGmres,
    FlexGmres,
    Hybrid,
}

/// The simulated *hypre* application.
#[derive(Debug, Clone)]
pub struct Hypre {
    space: ParamSpace,
    platform: ClusterPlatform,
}

impl Default for Hypre {
    fn default() -> Self {
        Self::new()
    }
}

/// Solver-id table (id, Krylov, preconditioner).
fn solver_table(id: u32) -> (Krylov, Precond) {
    match id {
        0 => (Krylov::None, Precond::Amg),
        1 => (Krylov::Pcg, Precond::Amg),
        2 => (Krylov::Pcg, Precond::DiagScale),
        3 => (Krylov::Gmres, Precond::Amg),
        4 => (Krylov::Gmres, Precond::DiagScale),
        5 => (Krylov::Cgnr, Precond::Amg),
        6 => (Krylov::Cgnr, Precond::DiagScale),
        7 => (Krylov::Gmres, Precond::Pilut),
        8 => (Krylov::Pcg, Precond::ParaSails),
        9 => (Krylov::BiCgStab, Precond::Amg),
        10 => (Krylov::BiCgStab, Precond::DiagScale),
        11 => (Krylov::BiCgStab, Precond::Pilut),
        12 => (Krylov::Pcg, Precond::Schwarz),
        13 => (Krylov::None, Precond::Gsmg),
        14 => (Krylov::Pcg, Precond::Gsmg),
        15 => (Krylov::Gmres, Precond::Gsmg),
        18 => (Krylov::Gmres, Precond::ParaSails),
        20 => (Krylov::Hybrid, Precond::Amg),
        43 => (Krylov::Pcg, Precond::Euclid),
        44 => (Krylov::Gmres, Precond::Euclid),
        45 => (Krylov::BiCgStab, Precond::Euclid),
        50 => (Krylov::LGmres, Precond::DiagScale),
        51 => (Krylov::LGmres, Precond::Amg),
        60 => (Krylov::FlexGmres, Precond::DiagScale),
        61 => (Krylov::FlexGmres, Precond::Amg),
        other => unreachable!("solver id {other} not in Table III"),
    }
}

/// The solver ids in Table III order.
#[must_use]
pub fn solver_ids() -> Vec<u32> {
    vec![
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 18, 20, 43, 44, 45, 50, 51, 61,
    ]
}

const PROCS: [f64; 7] = [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

impl Hypre {
    /// Builds the application model on Platform B.
    #[must_use]
    pub fn new() -> Self {
        let space = ParamSpace::new(
            "hypre",
            vec![
                Param::categorical("solver", solver_ids().iter().map(|id| format!("s{id}"))),
                Param::categorical("coarsening", ["pmis", "hmis"]),
                Param::categorical("smtype", (0..9).map(|s| format!("r{s}"))),
                Param::ordinal("process", PROCS.to_vec()),
            ],
        );
        Self {
            space,
            platform: ClusterPlatform::platform_b(),
        }
    }

    fn decode(&self, cfg: &Configuration) -> (u32, bool, u32, u32) {
        let vals = self.space.values(cfg);
        let solver = match &vals[0].1 {
            Value::Category(i, _) => solver_ids()[*i],
            v => unreachable!("solver decoded as {v:?}"),
        };
        let pmis = match &vals[1].1 {
            Value::Category(i, _) => *i == 0,
            v => unreachable!("coarsening decoded as {v:?}"),
        };
        let smtype = match &vals[2].1 {
            Value::Category(i, _) => *i as u32,
            v => unreachable!("smtype decoded as {v:?}"),
        };
        let procs = match vals[3].1 {
            Value::Number(v) => v as u32,
            ref v => unreachable!("process decoded as {v:?}"),
        };
        (solver, pmis, smtype, procs)
    }
}

/// Smoother properties: (cost multiplier, convergence-factor delta,
/// symmetric?).
fn smoother(smtype: u32) -> (f64, f64, bool) {
    match smtype {
        0 => (0.8, 0.10, true),   // weighted Jacobi
        1 => (1.0, 0.00, false),  // sequential Gauss–Seidel
        2 => (1.0, 0.02, false),  // interleaved GS
        3 => (1.0, 0.00, false),  // hybrid forward GS
        4 => (1.0, 0.01, false),  // hybrid backward GS
        5 => (1.05, 0.03, false), // chaotic GS
        6 => (1.3, -0.03, true),  // hybrid symmetric GS
        7 => (0.9, 0.07, true),   // Jacobi variant
        8 => (1.2, -0.02, true),  // l1 symmetric GS
        other => unreachable!("smtype {other} out of range"),
    }
}

impl TuningTarget for Hypre {
    fn name(&self) -> &str {
        "hypre"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn ideal_time(&self, cfg: &Configuration) -> f64 {
        let (solver, pmis, smtype, procs) = self.decode(cfg);
        let (krylov, precond) = solver_table(solver);
        let p = f64::from(procs);
        let nnz = N * NNZ_PER_ROW;

        // --- Preconditioner properties ------------------------------------
        let amg_like = matches!(precond, Precond::Amg | Precond::Gsmg);
        let (op_complexity, coarsen_delta) = if amg_like {
            if pmis {
                (1.25, 0.04)
            } else {
                (1.40, 0.01)
            }
        } else {
            (1.0, 0.0)
        };
        let (smoother_cost, smoother_delta, symmetric_smoother) = if amg_like {
            smoother(smtype)
        } else {
            (1.0, 0.0, true) // smtype is inert outside AMG
        };

        let (setup_factor, periter_factor, base_rho) = match precond {
            Precond::Amg => (6.0, 2.2 * smoother_cost, 0.14),
            Precond::Gsmg => (10.0, 2.2 * smoother_cost, 0.11),
            Precond::DiagScale => (0.05, 1.0, 0.9935), // κ ≈ (128/π)²
            Precond::Pilut => (4.0, 1.8, 0.62),
            Precond::ParaSails => (5.5, 1.5, 0.70),
            Precond::Schwarz => (3.0, 2.0, 0.55),
            Precond::Euclid => (3.5, 1.7, 0.58),
        };
        let mut rho: f64 = base_rho + coarsen_delta + smoother_delta;

        // --- Krylov acceleration and stability -----------------------------
        let mut matvecs_per_iter = 1.0;
        let mut extra_periter = 0.0;
        match krylov {
            Krylov::None => {}
            Krylov::Pcg => {
                if amg_like && !symmetric_smoother {
                    // Nonsymmetric preconditioner breaks CG orthogonality:
                    // stagnation near the cap.
                    rho = 0.985;
                } else {
                    rho = rho.powf(1.4).min(0.999);
                }
                extra_periter = 0.15;
            }
            Krylov::Gmres | Krylov::LGmres | Krylov::FlexGmres => {
                rho = rho.powf(1.3).min(0.999);
                extra_periter = 0.35; // orthogonalization
            }
            Krylov::BiCgStab => {
                rho = rho.powf(1.35).min(0.999);
                matvecs_per_iter = 2.0;
                extra_periter = 0.2;
            }
            Krylov::Cgnr => {
                // Normal equations square the condition number.
                rho = (0.5 + 0.5 * rho).powf(0.5).max(rho).min(0.9995);
                if precond == Precond::DiagScale {
                    rho = 0.99995; // hopeless: hits the cap
                }
                matvecs_per_iter = 2.0;
                extra_periter = 0.2;
            }
            Krylov::Hybrid => {
                // DS-CG phase first, then switches to AMG.
                rho = rho.powf(1.4).min(0.999);
                extra_periter = 0.15;
            }
        }

        let iters = ((TOL.ln() / rho.ln()).ceil()).clamp(1.0, MAX_ITERS)
            + if krylov == Krylov::Hybrid { 40.0 } else { 0.0 };

        // --- Per-iteration time --------------------------------------------
        let ranks_on_node = procs.min(self.platform.cores_per_node);
        let flops_per_rank =
            nnz * op_complexity * (matvecs_per_iter * periter_factor + extra_periter) * 2.0 / p;
        // SpMV reads matrix + vectors: ~1.3 bytes/flop effective.
        let compute = self
            .platform
            .compute_time(flops_per_rank, 1.3, ranks_on_node);

        let net = self.platform.transport_for(procs);
        let local_n = N / p;
        let halo_bytes = local_n.powf(2.0 / 3.0) * 6.0 * 8.0;
        let levels = if amg_like { 5.0 } else { 1.0 };
        // Halo per level (shrinking payload, constant latency) + Krylov dots
        // + the fixed per-level MPI software overhead every V-cycle pays.
        let mut comm = 0.0;
        for l in 0..levels as u32 {
            comm += net.p2p(halo_bytes / 8f64.powi(l as i32)) + 20e-6;
        }
        comm += 2.0 * net.allreduce(procs, 8.0);
        let per_iter = compute + comm;

        // --- Setup -----------------------------------------------------------
        let setup_flops = nnz * setup_factor * op_complexity / p;
        let setup = self.platform.compute_time(setup_flops, 1.0, ranks_on_node)
            + levels * net.allreduce(procs, 64.0);

        setup + iters * per_iter
    }

    fn measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> f64 {
        let ideal = self.ideal_time(cfg);
        let mut noise = pwu_stats::LogNormal::new(-0.5 * NOISE_SIGMA * NOISE_SIGMA, NOISE_SIGMA);
        ideal * noise.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_matches_table_three() {
        let h = Hypre::new();
        let arity: Vec<usize> = h
            .space()
            .params()
            .iter()
            .map(pwu_space::Param::arity)
            .collect();
        assert_eq!(arity, vec![24, 2, 9, 7]);
        assert_eq!(h.space().cardinality(), 24 * 2 * 9 * 7);
    }

    #[test]
    fn all_configurations_finite_with_heavy_tail() {
        let h = Hypre::new();
        let mut times: Vec<f64> = h
            .space()
            .enumerate()
            .map(|c| {
                let t = h.ideal_time(&c);
                assert!(t.is_finite() && t > 0.0);
                t
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let best = times[0];
        let median = times[times.len() / 2];
        let worst = times[times.len() - 1];
        assert!(worst / best > 30.0, "tail too light: {best}..{worst}");
        assert!(
            median / best > 1.5,
            "median {median} too close to best {best}"
        );
    }

    #[test]
    fn amg_pcg_beats_diag_scaling() {
        let h = Hypre::new();
        // solver 1 (AMG-PCG) vs 2 (DS-PCG), symmetric smoother 6, pmis, 64 ranks.
        let amg = h.ideal_time(&Configuration::new(vec![1, 0, 6, 3]));
        let ds = h.ideal_time(&Configuration::new(vec![2, 0, 6, 3]));
        assert!(amg < ds, "AMG {amg} vs DS {ds}");
    }

    #[test]
    fn nonsymmetric_smoother_breaks_pcg() {
        let h = Hypre::new();
        // AMG-PCG with symmetric smoother (6) vs nonsymmetric GS (1).
        let sym = h.ideal_time(&Configuration::new(vec![1, 0, 6, 3]));
        let nonsym = h.ideal_time(&Configuration::new(vec![1, 0, 1, 3]));
        assert!(
            nonsym > sym * 5.0,
            "PCG should stall with nonsymmetric smoother: {nonsym} vs {sym}"
        );
        // …but GMRES tolerates the same smoother.
        let gmres_nonsym = h.ideal_time(&Configuration::new(vec![3, 0, 1, 3]));
        assert!(gmres_nonsym < nonsym);
    }

    #[test]
    fn smtype_is_inert_for_non_amg_solvers() {
        let h = Hypre::new();
        // DS-PCG (solver 2): smtype must not change the time.
        let a = h.ideal_time(&Configuration::new(vec![2, 0, 0, 3]));
        let b = h.ideal_time(&Configuration::new(vec![2, 0, 5, 3]));
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_improves_then_saturates() {
        let h = Hypre::new();
        // AMG-PCG, pmis, symmetric smoother: 8 → 64 ranks should speed up.
        let t8 = h.ideal_time(&Configuration::new(vec![1, 0, 6, 0]));
        let t64 = h.ideal_time(&Configuration::new(vec![1, 0, 6, 3]));
        let t512 = h.ideal_time(&Configuration::new(vec![1, 0, 6, 6]));
        assert!(t64 < t8, "64 ranks {t64} vs 8 ranks {t8}");
        // Efficiency at 512 must be well below linear (latency floor).
        let speedup = t8 / t512;
        assert!(speedup < 64.0 * 0.8, "implausible speedup {speedup}");
    }

    #[test]
    fn pmis_cheaper_per_cycle_than_hmis() {
        let h = Hypre::new();
        let pmis = h.ideal_time(&Configuration::new(vec![0, 0, 6, 3]));
        let hmis = h.ideal_time(&Configuration::new(vec![0, 1, 6, 3]));
        // HMIS converges slightly better but costs more per cycle; for this
        // problem the complexity term dominates.
        assert_ne!(pmis, hmis);
    }

    #[test]
    fn cgnr_on_diag_scaling_hits_the_cap() {
        let h = Hypre::new();
        // solver 6 = DS-CGNR (index 6 in solver_ids), worst combo.
        let bad = h.ideal_time(&Configuration::new(vec![6, 0, 0, 3]));
        let good = h.ideal_time(&Configuration::new(vec![1, 0, 6, 3]));
        assert!(bad > good * 10.0, "cap case {bad} vs good {good}");
    }
}
