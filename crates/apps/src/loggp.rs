//! `LogGP` communication model.
//!
//! `T(s) = L + 2o + (s − 1)·G` for a point-to-point message of `s` bytes,
//! plus the `g` gap between consecutive message injections. Collectives are
//! modeled as binomial trees. Two parameter sets exist per platform: shared
//! memory inside a node and the fabric between nodes.

/// `LogGP` parameters, all in seconds (per byte for `big_g`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGp {
    /// Wire latency `L`.
    pub latency: f64,
    /// CPU send/receive overhead `o`.
    pub overhead: f64,
    /// Gap between messages `g` (inverse small-message rate).
    pub gap: f64,
    /// Gap per byte `G` (inverse bandwidth).
    pub big_g: f64,
}

impl LogGp {
    /// 100 Gb/s Omni-Path fabric (Platform B's interconnect).
    #[must_use]
    pub fn omnipath() -> Self {
        Self {
            latency: 1.5e-6,
            overhead: 0.4e-6,
            gap: 0.6e-6,
            big_g: 1.0 / 11.0e9, // ~11 GB/s effective per rank pair
        }
    }

    /// Shared-memory transport between ranks on one node.
    #[must_use]
    pub fn shared_memory() -> Self {
        Self {
            latency: 0.25e-6,
            overhead: 0.1e-6,
            gap: 0.15e-6,
            big_g: 1.0 / 5.0e9, // copy-through-memory bandwidth
        }
    }

    /// Time for one point-to-point message of `bytes` bytes.
    #[must_use]
    pub fn p2p(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "negative message size");
        self.latency + 2.0 * self.overhead + (bytes.max(1.0) - 1.0) * self.big_g
    }

    /// Time to inject `n` back-to-back messages of `bytes` each
    /// (pipelined: one latency, `n` gaps and payloads).
    #[must_use]
    pub fn pipelined(&self, n: f64, bytes: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        self.latency + 2.0 * self.overhead + n * (self.gap + (bytes.max(1.0) - 1.0) * self.big_g)
    }

    /// Binomial-tree allreduce over `p` ranks of a payload of `bytes`.
    #[must_use]
    pub fn allreduce(&self, p: u32, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (f64::from(p)).log2().ceil();
        // Reduce + broadcast: two tree traversals.
        2.0 * rounds * self.p2p(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_grows_linearly_in_size() {
        let net = LogGp::omnipath();
        let t1 = net.p2p(1.0);
        let t2 = net.p2p(1e6);
        assert!(t2 > t1);
        // Large-message slope equals 1/bandwidth.
        let slope = (net.p2p(2e6) - net.p2p(1e6)) / 1e6;
        assert!((slope - net.big_g).abs() / net.big_g < 1e-6);
    }

    #[test]
    fn shared_memory_is_faster_for_small_messages() {
        assert!(LogGp::shared_memory().p2p(64.0) < LogGp::omnipath().p2p(64.0));
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let net = LogGp::omnipath();
        let t2 = net.allreduce(2, 8.0);
        let t64 = net.allreduce(64, 8.0);
        assert_eq!(net.allreduce(1, 8.0), 0.0);
        assert!((t64 / t2 - 6.0).abs() < 1e-9, "log2(64)/log2(2) = 6");
    }

    #[test]
    fn pipelined_beats_sequential_p2p() {
        let net = LogGp::omnipath();
        let n = 32.0;
        assert!(net.pipelined(n, 1024.0) < n * net.p2p(1024.0));
        assert_eq!(net.pipelined(0.0, 1024.0), 0.0);
    }
}
