//! Simulated parallel applications: *kripke* and *hypre*.
//!
//! The paper tunes two distributed applications on Platform B (Table IV): the
//! LLNL transport proxy *kripke* (Table II) and the *hypre* `new_ij` driver
//! solving a 27-point 3-D Laplacian (Table III). Running them for real needs
//! an Omni-Path cluster with up to 512 MPI ranks, so this crate substitutes
//! analytical performance models with exactly the paper's parameter spaces:
//!
//! - [`kripke`] — a KBA sweep-pipeline model: zone/group/direction blocking,
//!   data-layout (nesting-order) efficiency, sweep vs block-Jacobi iteration
//!   counts, `LogGP` communication;
//! - [`hypre`] — an AMG/Krylov cost model: solver composition, PMIS/HMIS
//!   coarsening complexity, smoother cost/damping, convergence-derived
//!   iteration counts, per-level halo and reduction communication.
//!
//! Both expose the same [`pwu_space::TuningTarget`] interface as the kernel
//! simulators, so Algorithm 1 treats them identically. See `DESIGN.md` for
//! the substitution rationale: what matters for the sampling-strategy
//! comparison is the *structure* of the response surface (categorical
//! dominance, divergent heavy tails, smooth process-count scaling), which
//! these models reproduce.

pub mod hypre;
pub mod kripke;
pub mod loggp;
pub mod platform;

pub use hypre::Hypre;
pub use kripke::Kripke;
pub use loggp::LogGp;
pub use platform::ClusterPlatform;
