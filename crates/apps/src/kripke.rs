//! *kripke*: the LLNL discrete-ordinates transport proxy.
//!
//! Table II's parameter space: data `layout` (the nesting order of
//! Directions/Groups/Zones), the number of group-sets (`gset`) and
//! direction-sets (`dset`), the parallel method (`sweep` = pipelined KBA
//! wavefront, `bj` = block Jacobi), and the MPI process count.
//!
//! Model structure (one "solve" = `SOURCE_ITERS` source iterations):
//!
//! - the zone mesh is strong-scaled over a near-square 2-D process grid
//!   (KBA decomposition);
//! - work per zone·direction·group is constant, discounted by a layout
//!   efficiency: the innermost data dimension determines the stride-1 run
//!   length available to the vector units;
//! - `sweep` pays a pipeline-fill bubble of `Px + Py − 2` block steps per
//!   octant but converges in one sweep per iteration; the number of blocks
//!   is `gset × dset`, so finer blocking shortens the bubble while raising
//!   per-message latency costs — the classic KBA trade-off;
//! - `bj` has no wavefront (perfect overlap) but needs extra iterations to
//!   converge, growing with the process count.

use pwu_space::{Configuration, Param, ParamSpace, TuningTarget, Value};
use pwu_stats::Xoshiro256PlusPlus;

use crate::platform::ClusterPlatform;

/// Total energy groups.
const GROUPS: u64 = 128;
/// Total quadrature directions (8 octants × 12).
const DIRECTIONS: u64 = 96;
/// Global zone mesh (cube side).
const ZONES_SIDE: u64 = 96;
/// Source iterations per solve.
const SOURCE_ITERS: f64 = 10.0;
/// Flops per zone·direction·group per sweep (diamond-difference update).
const FLOPS_PER_UNKNOWN: f64 = 40.0;

/// Measurement noise (cluster-level, ~5 %).
const NOISE_SIGMA: f64 = 0.05;

/// The six nesting orders of Directions, Groups, Zones.
const LAYOUTS: [&str; 6] = ["DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"];
const GSETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
const DSETS: [f64; 3] = [8.0, 16.0, 32.0];
const PROCS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// The simulated *kripke* application.
#[derive(Debug, Clone)]
pub struct Kripke {
    space: ParamSpace,
    platform: ClusterPlatform,
}

impl Default for Kripke {
    fn default() -> Self {
        Self::new()
    }
}

impl Kripke {
    /// Builds the application model on Platform B.
    #[must_use]
    pub fn new() -> Self {
        let space = ParamSpace::new(
            "kripke",
            vec![
                Param::categorical("layout", LAYOUTS),
                Param::ordinal("gset", GSETS.to_vec()),
                Param::ordinal("dset", DSETS.to_vec()),
                Param::categorical("pmethod", ["sweep", "bj"]),
                Param::ordinal("process", PROCS.to_vec()),
            ],
        );
        Self {
            space,
            platform: ClusterPlatform::platform_b(),
        }
    }

    fn decode(&self, cfg: &Configuration) -> (usize, u64, u64, bool, u32) {
        let vals = self.space.values(cfg);
        let layout = match &vals[0].1 {
            Value::Category(i, _) => *i,
            v => unreachable!("layout decoded as {v:?}"),
        };
        let gset = match vals[1].1 {
            Value::Number(v) => v as u64,
            ref v => unreachable!("gset decoded as {v:?}"),
        };
        let dset = match vals[2].1 {
            Value::Number(v) => v as u64,
            ref v => unreachable!("dset decoded as {v:?}"),
        };
        let sweep = match &vals[3].1 {
            Value::Category(i, _) => *i == 0,
            v => unreachable!("pmethod decoded as {v:?}"),
        };
        let procs = match vals[4].1 {
            Value::Number(v) => v as u32,
            ref v => unreachable!("process decoded as {v:?}"),
        };
        (layout, gset, dset, sweep, procs)
    }

    /// Stride-1 run length the innermost data dimension offers, given the
    /// per-set sizes.
    fn inner_run(layout: usize, zones_local: f64, groups_per_set: f64, dirs_per_set: f64) -> f64 {
        // Last letter of the nesting is the innermost dimension.
        match LAYOUTS[layout].as_bytes()[2] {
            b'Z' => zones_local.cbrt().max(1.0) * 4.0, // zone pencils
            b'G' => groups_per_set,
            b'D' => dirs_per_set,
            _ => unreachable!("layout letters are D/G/Z"),
        }
    }

    /// Vectorization/cache efficiency from the innermost run length, and a
    /// small penalty when the *outer* dimension is zones (poor locality for
    /// the scattering source).
    fn layout_efficiency(layout: usize, inner_run: f64) -> f64 {
        let vec_eff = inner_run / (inner_run + 6.0);
        let outer_penalty = if LAYOUTS[layout].as_bytes()[0] == b'Z' {
            0.92
        } else {
            1.0
        };
        (0.25 + 0.75 * vec_eff) * outer_penalty
    }
}

impl TuningTarget for Kripke {
    fn name(&self) -> &str {
        "kripke"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn ideal_time(&self, cfg: &Configuration) -> f64 {
        let (layout, gset, dset, sweep, procs) = self.decode(cfg);
        let p = f64::from(procs);
        let zones_total = (ZONES_SIDE * ZONES_SIDE * ZONES_SIDE) as f64;
        let zones_local = zones_total / p;

        // Group/direction blocking. `gset` can exceed the group count; the
        // effective set count is clamped (sets of one group).
        let gsets = gset.min(GROUPS) as f64;
        let dsets = dset.min(DIRECTIONS) as f64;
        let groups_per_set = (GROUPS as f64 / gsets).max(1.0);
        let dirs_per_set = (DIRECTIONS as f64 / dsets).max(1.0);

        let inner = Self::inner_run(layout, zones_local, groups_per_set, dirs_per_set);
        let eff = Self::layout_efficiency(layout, inner);

        // --- Per-block compute -------------------------------------------
        let unknowns_per_block = zones_local * groups_per_set * dirs_per_set;
        let flops_per_block = unknowns_per_block * FLOPS_PER_UNKNOWN / eff;
        let ranks_on_node = procs.min(self.platform.cores_per_node);
        // Transport sweeps stream the angular flux: ~1.5 bytes/flop.
        let block_compute = self
            .platform
            .compute_time(flops_per_block, 1.5, ranks_on_node);

        // --- Per-block communication --------------------------------------
        // KBA: each block forwards two face buffers downstream.
        let (px, py) = proc_grid(procs);
        let face_zones = (zones_local.cbrt().powi(2)).max(1.0);
        let face_bytes = face_zones * groups_per_set * dirs_per_set * 8.0;
        let net = self.platform.transport_for(procs);
        let block_comm = if procs == 1 {
            0.0
        } else {
            2.0 * net.p2p(face_bytes)
        };

        let n_blocks = gsets * dsets; // per octant
        let octants = 8.0;

        let per_iteration = if sweep {
            // Pipelined wavefront: fill bubble of (px + py − 2) block steps,
            // then one step per block, per octant.
            let steps = n_blocks + f64::from(px + py) - 2.0;
            octants * steps * (block_compute + block_comm)
        } else {
            // Block Jacobi: all ranks work concurrently, one boundary
            // exchange per block; no bubble.
            octants * n_blocks * (block_compute + block_comm)
        };

        // Convergence: sweep is exact per iteration; block Jacobi needs more
        // iterations the more the domain is partitioned.
        let iter_factor = if sweep {
            1.0
        } else {
            1.0 + 0.45 * p.log2().max(0.0)
        };

        // Population/source update each iteration: an allreduce.
        let reduce = net.allreduce(procs, 8.0 * GROUPS as f64);

        SOURCE_ITERS * iter_factor * (per_iteration + reduce)
    }

    fn measure(&self, cfg: &Configuration, rng: &mut Xoshiro256PlusPlus) -> f64 {
        let ideal = self.ideal_time(cfg);
        let mut noise = pwu_stats::LogNormal::new(-0.5 * NOISE_SIGMA * NOISE_SIGMA, NOISE_SIGMA);
        ideal * noise.sample(rng)
    }
}

/// Near-square 2-D factorization of the rank count (KBA grid).
fn proc_grid(p: u32) -> (u32, u32) {
    let mut best = (1, p);
    let mut i = 1;
    while i * i <= p {
        if p.is_multiple_of(i) {
            best = (i, p / i);
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_matches_table_two() {
        let k = Kripke::new();
        assert_eq!(k.space().dim(), 5);
        let arity: Vec<usize> = k
            .space()
            .params()
            .iter()
            .map(pwu_space::Param::arity)
            .collect();
        assert_eq!(arity, vec![6, 8, 3, 2, 8]);
        assert_eq!(k.space().cardinality(), 6 * 8 * 3 * 2 * 8);
    }

    #[test]
    fn proc_grid_is_near_square() {
        assert_eq!(proc_grid(1), (1, 1));
        assert_eq!(proc_grid(16), (4, 4));
        assert_eq!(proc_grid(32), (4, 8));
        assert_eq!(proc_grid(128), (8, 16));
    }

    #[test]
    fn all_configurations_have_finite_positive_times() {
        let k = Kripke::new();
        let mut best = f64::INFINITY;
        let mut worst: f64 = 0.0;
        for cfg in k.space().enumerate() {
            let t = k.ideal_time(&cfg);
            assert!(t.is_finite() && t > 0.0, "bad time {t} for {cfg}");
            best = best.min(t);
            worst = worst.max(t);
        }
        // The surface must be worth tuning: ≥ 10× spread.
        assert!(worst / best > 10.0, "spread {best}..{worst}");
    }

    #[test]
    fn parallelism_helps_up_to_a_point() {
        let k = Kripke::new();
        // layout GZD? use fixed moderate blocking: gset=8 (idx 3), dset=8 (idx 0),
        // sweep, varying process count.
        let t = |p_idx: u32| k.ideal_time(&Configuration::new(vec![0, 3, 0, 0, p_idx]));
        // 16 ranks must beat 1 rank.
        assert!(t(4) < t(0), "16 ranks {} vs 1 rank {}", t(4), t(0));
    }

    #[test]
    fn sweep_beats_bj_at_scale_for_this_problem() {
        let k = Kripke::new();
        // At 128 ranks with moderate blocking, bj's extra iterations should
        // outweigh the pipeline bubble.
        let sweep = k.ideal_time(&Configuration::new(vec![0, 3, 1, 0, 7]));
        let bj = k.ideal_time(&Configuration::new(vec![0, 3, 1, 1, 7]));
        assert!(sweep < bj, "sweep {sweep} vs bj {bj}");
    }

    #[test]
    fn blocking_tradeoff_exists() {
        let k = Kripke::new();
        // With sweep on 64 ranks, a single huge block (gset=1,dset=8) should
        // be slower than moderate blocking (pipeline fill dominates), and
        // maximal blocking (gset=128,dset=32) should pay latency.
        let coarse = k.ideal_time(&Configuration::new(vec![2, 0, 0, 0, 6]));
        let moderate = k.ideal_time(&Configuration::new(vec![2, 3, 1, 0, 6]));
        assert!(
            moderate < coarse,
            "moderate {moderate} should beat coarse {coarse}"
        );
    }

    #[test]
    fn measurement_noise_is_multiplicative() {
        let k = Kripke::new();
        let cfg = Configuration::new(vec![0, 0, 0, 0, 0]);
        let ideal = k.ideal_time(&cfg);
        let mut rng = Xoshiro256PlusPlus::new(3);
        for _ in 0..100 {
            let m = k.measure(&cfg, &mut rng);
            assert!(m > ideal * 0.7 && m < ideal * 1.5);
        }
    }
}
